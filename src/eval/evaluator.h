#ifndef DIRE_EVAL_EVALUATOR_H_
#define DIRE_EVAL_EVALUATOR_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "base/guard.h"
#include "base/result.h"
#include "base/thread_pool.h"
#include "eval/plan.h"
#include "eval/provenance.h"
#include "storage/database.h"

namespace dire::eval {

// Per-predicate semi-naive delta relations, as maintained by the fixpoint
// loop and exposed to checkpointing.
using DeltaMap = std::map<std::string, std::unique_ptr<storage::Relation>>;

// Receives evaluation checkpoints (see EvalOptions::checkpointer). The
// production implementation (eval/checkpoint.h) persists the database plus
// the delta map to a storage::DataDir; tests substitute their own.
//
// `stratum_index` is the index into the program's stratification at which a
// crashed run should resume: strata before it are complete and their derived
// tuples are part of the database. `rounds_done` and `deltas` are set only
// for checkpoints taken at a clean semi-naive round boundary; `deltas` then
// holds the frontier needed to continue the in-flight stratum without
// re-deriving it (null deltas mean the stratum restarts from its merged
// state, which is always sound — Datalog is monotone and inserts are
// idempotent).
class Checkpointer {
 public:
  virtual ~Checkpointer() = default;
  virtual Status Checkpoint(int stratum_index, int rounds_done,
                            const DeltaMap* deltas) = 0;
};

// Where to pick up a checkpointed evaluation (see Checkpointer). Built by
// RecoverDatabase from persisted checkpoint metadata.
struct ResumePoint {
  int stratum_index = 0;
  int rounds_done = 0;
  // When true, `deltas` holds the checkpointed frontier of stratum
  // `stratum_index` and its semi-naive loop continues from round
  // `rounds_done`; when false that stratum restarts from the merged state.
  bool have_deltas = false;
  DeltaMap deltas;
};

struct EvalOptions {
  enum class Mode {
    kNaive,      // Re-run every rule on the full relations each round.
    kSemiNaive,  // Differentiate rules through delta relations
                 // (the compiled-evaluation baseline the paper cites
                 // [Bancilhon et al., Henschen–Naqvi]).
  };
  Mode mode = Mode::kSemiNaive;

  // Per-stratum cap on fixpoint rounds; 0 means unlimited.
  int max_iterations = 0;

  // When false, recursive strata run exactly `max_iterations` rounds with no
  // convergence test — the paper's §6 "replace termination conditions by
  // iteration bounds" evaluation mode. Requires max_iterations > 0.
  bool stop_on_fixpoint = true;

  // Join reordering (see CompileOptions::reorder). When false rules run in
  // their written atom order and `planner` is ignored.
  bool reorder_atoms = true;

  // Join-order policy (see PlannerMode in eval/plan.h). kCost orders body
  // atoms by estimated cardinality from live relation statistics (row
  // counts plus per-column distinct sketches); kGreedy uses the
  // statistics-free bound-count proxy. The derived fixpoint — and the
  // bytes of a sorted snapshot of it — is identical either way; only join
  // order, and thus evaluation time, changes.
  PlannerMode planner = PlannerMode::kCost;

  // Adaptive re-planning for semi-naive evaluation under kCost: when any
  // full relation a recursive stratum's delta plans read grows or shrinks
  // past this factor versus its size at planning time, the stratum's stats
  // epoch bumps and cached delta plans recompile against fresh statistics.
  // Must be > 1. Relations where both sizes are under 16 rows never
  // trigger (tiny-relation noise). Steady-state rounds hit the
  // (rule, delta-atom, epoch) plan cache and pay zero planning cost.
  double replan_threshold = 4.0;

  // Worker threads for rule execution (1 = fully serial, the default). With
  // N > 1 each sufficiently large rule firing partitions its driving scan
  // (the semi-naive delta, or the first atom's relation) into chunks joined
  // concurrently over frozen relation views, then merged at a barrier in
  // chunk order — so results are byte-identical to a serial run, round for
  // round. Checkpoints still happen only at round boundaries and are
  // unchanged. Must be >= 1.
  int num_threads = 1;

  // When set, every derived tuple's first-derivation round is recorded,
  // enabling Explain() provenance queries afterwards. Not owned.
  ProvenanceTracker* tracker = nullptr;

  // When set, evaluation is bounded by the guard's deadline, tuple budget,
  // memory budget and cancellation token, checked per rule firing and per
  // fixpoint round. Not owned; one guard may be shared by several stages of
  // a single execution (e.g. magic rewrite + evaluation). Not owned.
  const ExecutionGuard* guard = nullptr;

  // What to do when the guard trips.
  enum class OnExhaustion {
    // Return kResourceExhausted / kCancelled. The database retains the
    // tuples derived so far (all sound; Datalog is monotone).
    kError,
    // Return OK with EvalStats{converged=false, exhausted=true,
    // exhausted_reason=...}: a well-formed partial result.
    kPartial,
  };
  OnExhaustion on_exhaustion = OnExhaustion::kError;

  // When set, evaluation checkpoints through this interface: at every
  // stratum boundary, on guard exhaustion/cancellation, at completion, and —
  // when checkpoint_every_rounds > 0 — every N semi-naive rounds (with the
  // delta frontier, so resumption continues mid-stratum). A checkpoint
  // failure aborts evaluation: durability was requested and cannot be
  // provided. Not owned.
  Checkpointer* checkpointer = nullptr;

  // Round period for mid-stratum checkpoints; 0 checkpoints only at stratum
  // boundaries, exhaustion, and completion. Requires `checkpointer`.
  int checkpoint_every_rounds = 0;

  // Rejects option combinations documented as invalid: a negative
  // max_iterations, stop_on_fixpoint == false with no iteration bound
  // (which would run forever), or checkpoint_every_rounds without a
  // checkpointer.
  Status Validate() const;
};

// Per-rule evaluation breakdown, accumulated over every firing of the
// rule's plan variants (the plain plan plus each semi-naive delta variant).
struct RuleStats {
  // Index into EvalStats::rule_stats, stable for one evaluation.
  int rule_index = -1;
  // The rule's source text, e.g. "t(X, Y) :- e(X, Z), t(Z, Y).".
  std::string rule;
  std::string head_predicate;
  // Index of the stratum the rule ran in; -1 if it never ran.
  int stratum = -1;
  // Plan executions (per round, per delta variant).
  size_t firings = 0;
  // Head tuples emitted by the join, before any deduplication.
  size_t tuples_emitted = 0;
  // New tuples this rule inserted into its head relation. Summed over all
  // rules this equals EvalStats::tuples_derived.
  size_t tuples_inserted = 0;
  // Wall time spent executing this rule's joins and merging their output.
  int64_t exec_ns = 0;
};

// Per-stratum breakdown, in evaluation order.
struct StratumStats {
  int index = -1;
  std::vector<std::string> predicates;
  bool recursive = false;
  // Fixpoint rounds this stratum ran (1 for a nonrecursive stratum).
  int rounds = 0;
  size_t tuples_inserted = 0;
  int64_t wall_ns = 0;
};

struct EvalStats {
  // Fixpoint rounds summed over all strata (a nonrecursive stratum counts 1).
  int iterations = 0;
  // New tuples inserted into IDB relations.
  size_t tuples_derived = 0;
  // Head tuples emitted by joins before any deduplication; emitted minus
  // derived is the duplicate (wasted) work the engine rejected.
  size_t tuples_emitted = 0;
  // Rule-variant executions.
  size_t rule_firings = 0;
  // False if a stratum hit max_iterations before reaching a fixpoint, or if
  // a resource guard stopped evaluation early.
  bool converged = true;
  // True when an ExecutionGuard tripped under OnExhaustion::kPartial; the
  // derived relations then hold a sound but possibly incomplete prefix.
  bool exhausted = false;
  // Which limit tripped ("deadline exceeded after ...", ...); empty
  // otherwise.
  std::string exhausted_reason;
  // Delta-plan recompilations triggered by statistics drift (kCost
  // semi-naive evaluation only; the first compile of a variant is not a
  // replan).
  size_t replans = 0;
  // Delta-plan compilations avoided because the variant's cached plan was
  // built at the current stats epoch.
  size_t plan_cache_hits = 0;
  // Where the time and tuples went: one entry per rule (in registration
  // order) and per executed stratum. Rendered by eval::FormatEvalStats.
  std::vector<RuleStats> rule_stats;
  std::vector<StratumStats> stratum_stats;
};

// Maps a body atom to the relation it reads (may return nullptr for a
// missing relation, which yields no rows). The executor's resolver returns
// frozen (const) views: execution is a pure read phase, which is what makes
// one firing safe to split across worker threads. The mutable variant is
// used by the driver before execution, to pre-build the indexes the plan
// probes (see PrepareIndexes).
using RelationResolver =
    std::function<const storage::Relation*(const CompiledAtom&)>;
using MutableRelationResolver =
    std::function<storage::Relation*(const CompiledAtom&)>;
// Receives each derived head tuple (duplicates possible) together with its
// content hash (storage::Relation::HashRow, computed once at emission).
// Sinks typically reject candidates already in the head relation and stage
// the rest into a deduplicating Relation — both via the *Hashed fast paths,
// so a duplicate candidate costs zero allocations — so that a
// high-multiplicity join cannot blow up memory. The row view is valid only
// for the duration of the call.
using TupleSink = std::function<void(storage::RowRef, uint64_t hash)>;

// Bottom-up Datalog evaluation over a Database. General positive programs
// are supported: predicates are stratified into strongly connected
// components of the dependency graph and evaluated dependencies-first.
class Evaluator {
 public:
  explicit Evaluator(storage::Database* db, EvalOptions options = {})
      : db_(db), options_(options) {}

  // Loads the program's facts into the database, then evaluates all rules to
  // fixpoint (or to the iteration bound). Derived tuples are inserted into
  // the database's relations.
  //
  // With a non-null `resume`, evaluation continues a checkpointed run:
  // strata before resume->stratum_index are skipped (their derivations are
  // already in the database), and that stratum either continues from its
  // checkpointed deltas or restarts from the merged state. The program must
  // be the one the checkpoint was taken from.
  Result<EvalStats> Evaluate(const ast::Program& program,
                             const ResumePoint* resume = nullptr);

  // Runs each rule exactly once against the current database contents and
  // inserts the results — evaluation of a nonrecursive rule set (a union of
  // conjunctive queries).
  Result<EvalStats> EvaluateOnce(const std::vector<ast::Rule>& rules);

 private:
  // A rule paired with its index into stats_.rule_stats.
  struct IndexedRule {
    const ast::Rule* rule;
    int id;
  };

  // Appends a RuleStats entry for `r` and returns its index.
  int RegisterRule(const ast::Rule& r);

  Status EvaluateStratum(const std::vector<IndexedRule>& rules,
                         const std::vector<std::string>& stratum,
                         int stratum_index, bool recursive,
                         const ResumePoint* resume);
  Status NaiveFixpoint(const std::vector<IndexedRule>& rules,
                       int stratum_index, int* rounds);
  Status SemiNaiveFixpoint(const std::vector<IndexedRule>& rules,
                           const std::vector<std::string>& stratum,
                           int stratum_index, const ResumePoint* resume,
                           int* rounds);
  // Fires each rule exactly once against the current database (the body of
  // a nonrecursive stratum and of the public EvaluateOnce).
  Status RunRulesOnce(const std::vector<IndexedRule>& rules);

  // Executes one compiled plan: builds the indexes it probes, runs the join
  // (across the worker pool when options_.num_threads > 1 and the driving
  // scan is large enough), stages the output, merges it into `head` (and
  // `delta` when non-null), and accounts the firing to
  // stats_.rule_stats[rule_id] plus the metrics registry.
  Status FireRule(const CompiledRule& plan, int rule_id,
                  const MutableRelationResolver& resolve,
                  storage::Relation* head, storage::Relation* delta);

  // How many chunks FireRule should split this firing into; 1 means run
  // serially (parallelism disabled, no driving scan, or too few rows to be
  // worth a barrier).
  size_t PlanChunks(const CompiledRule& plan,
                    const RelationResolver& resolve) const;

  // The parallel read phase + serial merge barrier of one firing: the first
  // atom's scan is split into `num_chunks` row ranges joined concurrently
  // into per-chunk staging buffers, which are then merged in chunk order —
  // byte-identical to the serial execution. Sets *emitted to the total
  // pre-dedup head tuples.
  Status FireRuleChunked(const CompiledRule& plan, int rule_id,
                         const RelationResolver& resolve,
                         storage::Relation* head, storage::Relation* delta,
                         size_t num_chunks, size_t* emitted);

  // The lazily created worker pool behind options_.num_threads.
  ThreadPool* Pool();

  // Invokes the checkpointer when one is armed; see EvalOptions.
  Status MaybeCheckpoint(int stratum_index, int rounds_done,
                         const DeltaMap* deltas);

  // Consults the guard after charging it the database's current memory
  // footprint. On a trip: under OnExhaustion::kError returns the trip
  // status; under kPartial marks stats_ exhausted, sets *stop, and returns
  // OK so the caller can wind down with a consistent partial result.
  Status GuardCheck(bool* stop);

  // Merges `staging` into `head` (and `delta` when non-null), charging the
  // guard per new tuple so the tuple budget trips exactly at its limit.
  // Fails only through the storage.relation_insert failpoint.
  Status MergeStaging(const storage::Relation& staging,
                      const std::string& predicate, storage::Relation* head,
                      storage::Relation* delta, int rule_id);

  // Records `tuple` for provenance when a tracker is attached (the tuple
  // materializes only in that case — never on the default path).
  void Note(const std::string& predicate, storage::RowRef tuple) {
    if (options_.tracker != nullptr) {
      options_.tracker->Record(
          predicate, storage::Tuple(tuple.begin(), tuple.end()),
          provenance_round_);
    }
  }

  storage::Database* db_;
  EvalOptions options_;
  // Accumulates the evaluation in flight and is returned by value at the
  // end. Reset at the start of every Evaluate/EvaluateOnce: a reused
  // evaluator must never leak a previous run's counts or exhausted_reason
  // into the next result (regression-tested).
  EvalStats stats_;
  // Monotone pass counter shared by all strata, so premises always carry
  // strictly smaller rounds than their conclusions. Deliberately NOT reset
  // between evaluations: a shared ProvenanceTracker needs rounds to keep
  // increasing across Evaluate calls on the same evaluator.
  int provenance_round_ = 0;
  // Persistent worker pool for num_threads > 1; created on first parallel
  // firing and reused across rounds, strata, and evaluations.
  std::unique_ptr<ThreadPool> pool_;
};

// Builds every index `rule`'s executor will probe on the relations
// `resolve` yields (see RequiredIndexes in plan.h). Call before
// ExecuteRule / ExecuteRuleRange: execution itself treats relations as
// frozen views and never builds an index (a missing index yields no rows,
// it is never built mid-join).
void PrepareIndexes(const CompiledRule& rule,
                    const MutableRelationResolver& resolve);

// `symbols` is needed to evaluate comparison builtins (may be null for
// rules that use none; a builtin atom then never matches).
// When `guard` is set the join polls it periodically and stops emitting as
// soon as it trips, so a single enormous join cannot outlive the deadline;
// the caller observes the trip through guard->Check().
void ExecuteRule(const CompiledRule& rule, const RelationResolver& resolve,
                 const TupleSink& sink,
                 const storage::SymbolTable* symbols = nullptr,
                 const ExecutionGuard* guard = nullptr);

// Range-restricted variant for parallel chunking: the first body atom scans
// only rows [begin_row, end_row) of its relation (its probe, if any, is
// bypassed — checks still filter, so results are exactly the full
// execution's restricted to those driving rows). Later atoms execute
// normally. Safe to call concurrently with other range executions of the
// same plan, provided PrepareIndexes ran first and no relation mutates.
void ExecuteRuleRange(const CompiledRule& rule,
                      const RelationResolver& resolve, const TupleSink& sink,
                      const storage::SymbolTable* symbols,
                      const ExecutionGuard* guard, size_t begin_row,
                      size_t end_row);

// Executes `rule` and reports, per body atom (in plan order), the number
// of bindings that survived it — the observed cumulative join cardinality
// ExplainPlan renders next to the planner's est_rows. `counts` is resized
// to the body size and zeroed first. Head tuples are counted (pre-dedup)
// into *emitted when non-null; nothing is inserted anywhere.
// PrepareIndexes need not have run (the executor falls back to scans).
void CountAtomMatches(const CompiledRule& rule,
                      const RelationResolver& resolve,
                      const storage::SymbolTable* symbols,
                      std::vector<uint64_t>* counts,
                      uint64_t* emitted = nullptr);

}  // namespace dire::eval

#endif  // DIRE_EVAL_EVALUATOR_H_
