#ifndef DIRE_EVAL_CHECKPOINT_H_
#define DIRE_EVAL_CHECKPOINT_H_

#include <memory>
#include <string>
#include <string_view>

#include "ast/ast.h"
#include "base/result.h"
#include "eval/evaluator.h"
#include "storage/persist.h"

namespace dire::eval {

// CRC32C of the program text, stored in every checkpoint so recovery can
// refuse to resume an evaluation under a different program (whose strata
// would not line up with the checkpointed indices).
uint32_t ProgramCrc(std::string_view program_text);

// Persists evaluation checkpoints to a storage::DataDir: the database plus
// the in-flight stratum's delta frontier (as "$delta:" sections) and the
// (stratum, rounds, program_crc) meta triple, all in one atomically replaced
// snapshot, after which the WAL resets. The evaluator must be running on
// data_dir->db().
class DataDirCheckpointer : public Checkpointer {
 public:
  DataDirCheckpointer(storage::DataDir* data_dir, uint32_t program_crc)
      : data_dir_(data_dir), program_crc_(program_crc) {}

  Status Checkpoint(int stratum_index, int rounds_done,
                    const DeltaMap* deltas) override;

 private:
  storage::DataDir* data_dir_;  // Not owned.
  uint32_t program_crc_;
};

// Turns what DataDir::Open recovered into a ResumePoint for Evaluate():
// verifies the checkpoint belongs to `program_crc`, and re-interns the
// checkpointed delta rows into the recovered database's relations. A
// directory without checkpoint metadata yields the default ResumePoint
// (start from stratum 0 over the recovered facts).
Result<ResumePoint> BuildResumePoint(storage::DataDir* data_dir,
                                     uint32_t program_crc);

struct RecoverResult {
  std::unique_ptr<storage::DataDir> data_dir;
  EvalStats stats;
};

// One-call crash recovery: opens `dir` (snapshot load + WAL replay), builds
// the resume point for `program` (identified by `program_text`), re-arms a
// DataDirCheckpointer with the same cadence, and continues evaluation to
// completion. `options.checkpointer` must be null (recovery supplies it).
Result<RecoverResult> RecoverDatabase(const std::string& dir,
                                      const ast::Program& program,
                                      std::string_view program_text,
                                      EvalOptions options = {});

}  // namespace dire::eval

#endif  // DIRE_EVAL_CHECKPOINT_H_
