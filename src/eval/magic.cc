#include "eval/magic.h"

#include <map>
#include <set>

#include "base/obs.h"
#include "base/string_util.h"

namespace dire::eval {
namespace {

// '@' cannot appear in parsed predicate names, so generated names never
// collide with user predicates.
std::string AdornedName(const std::string& pred, const std::string& ad) {
  return pred + "@" + ad;
}
std::string MagicName(const std::string& pred, const std::string& ad) {
  return "m_" + pred + "@" + ad;
}

std::string AdornAtom(const ast::Atom& atom,
                      const std::set<std::string>& bound) {
  std::string ad;
  for (const ast::Term& t : atom.args) {
    bool b = t.IsConstant() || bound.count(t.text()) != 0;
    ad += b ? 'b' : 'f';
  }
  return ad;
}

// The magic atom for `atom` under adornment `ad`: the bound-position
// arguments only.
ast::Atom MagicAtom(const ast::Atom& atom, const std::string& ad) {
  std::vector<ast::Term> args;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (ad[i] == 'b') args.push_back(atom.args[i]);
  }
  return ast::Atom(MagicName(atom.predicate, ad), std::move(args));
}

// True if `tuple` matches the constant / repeated-variable pattern of
// `query` (variables of the query are bindings to read off).
bool Matches(const ast::Atom& query, storage::RowRef tuple,
             const storage::SymbolTable& symbols) {
  std::map<std::string, storage::ValueId> binding;
  for (size_t i = 0; i < query.args.size(); ++i) {
    const ast::Term& t = query.args[i];
    if (t.IsConstant()) {
      storage::ValueId id = symbols.Find(t.text());
      if (id == storage::SymbolTable::kMissing || tuple[i] != id) return false;
    } else {
      auto [it, inserted] = binding.emplace(t.text(), tuple[i]);
      if (!inserted && it->second != tuple[i]) return false;
    }
  }
  return true;
}

}  // namespace

Result<MagicRewrite> MagicSetTransform(const ast::Program& program,
                                       const ast::Atom& query,
                                       const ExecutionGuard* guard) {
  obs::Span span("magic.transform", "rewrite");
  span.Attr("query", query.predicate);
  obs::GetCounter("dire_magic_rewrites_total", "Magic-set transformations")
      ->Add(1);
  std::set<std::string> idb;
  for (const ast::Rule& r : program.rules) {
    if (!r.IsFact()) idb.insert(r.head.predicate);
    for (const ast::Atom& a : r.body) {
      if (a.negated) {
        return Status::InvalidArgument(
            "the magic-sets rewrite is implemented for positive programs; "
            "negated literal in: " +
            r.ToString());
      }
    }
  }
  if (idb.count(query.predicate) == 0) {
    return Status::InvalidArgument(
        "query predicate '" + query.predicate +
        "' has no rules; magic sets applies to IDB queries");
  }

  MagicRewrite out;
  // Keep the EDB facts.
  for (const ast::Rule& r : program.rules) {
    if (r.IsFact()) out.program.rules.push_back(r);
  }

  // Query adornment and seed.
  std::string query_ad = AdornAtom(query, /*bound=*/{});
  out.adornment = query_ad;
  out.answer_predicate = AdornedName(query.predicate, query_ad);
  out.rewritten_query = ast::Atom(out.answer_predicate, query.args);

  ast::Atom seed = MagicAtom(query, query_ad);
  out.program.rules.push_back(ast::Rule(seed, {}));  // A fact.

  // Process each reachable (predicate, adornment) pair once.
  std::set<std::pair<std::string, std::string>> done;
  std::vector<std::pair<std::string, std::string>> worklist = {
      {query.predicate, query_ad}};
  done.insert(worklist.front());

  while (!worklist.empty()) {
    if (guard != nullptr) DIRE_RETURN_IF_ERROR(guard->Check());
    auto [pred, ad] = worklist.back();
    worklist.pop_back();

    for (const ast::Rule& rule : program.rules) {
      if (rule.IsFact() || rule.head.predicate != pred) continue;
      if (rule.head.arity() != ad.size()) {
        return Status::InvalidArgument(
            "adornment arity mismatch for predicate '" + pred + "'");
      }

      // Variables bound on entry: head variables at bound positions.
      std::set<std::string> bound;
      for (size_t i = 0; i < ad.size(); ++i) {
        if (ad[i] == 'b' && rule.head.args[i].IsVariable()) {
          bound.insert(rule.head.args[i].text());
        }
      }

      ast::Atom head_magic = MagicAtom(rule.head, ad);
      std::vector<ast::Atom> prefix = {head_magic};

      // Left-to-right sideways information passing.
      std::vector<ast::Atom> new_body = {head_magic};
      for (const ast::Atom& atom : rule.body) {
        if (idb.count(atom.predicate) != 0) {
          std::string sub_ad = AdornAtom(atom, bound);
          auto key = std::make_pair(atom.predicate, sub_ad);
          if (done.insert(key).second) worklist.push_back(key);
          // Magic rule: bindings flow into the subgoal.
          ast::Atom sub_magic = MagicAtom(atom, sub_ad);
          out.program.rules.push_back(ast::Rule(sub_magic, prefix));
          ast::Atom adorned(AdornedName(atom.predicate, sub_ad), atom.args);
          new_body.push_back(adorned);
          prefix.push_back(adorned);
        } else {
          new_body.push_back(atom);
          prefix.push_back(atom);
        }
        for (const ast::Term& t : atom.args) {
          if (t.IsVariable()) bound.insert(t.text());
        }
      }

      out.program.rules.push_back(ast::Rule(
          ast::Atom(AdornedName(pred, ad), rule.head.args), new_body));
    }
  }
  span.Attr("adornment", out.adornment);
  span.Attr("rewritten_rules", out.program.rules.size());
  return out;
}

Result<QueryAnswer> AnswerQuery(storage::Database* db,
                                const ast::Program& program,
                                const ast::Atom& query,
                                const EvalOptions& options) {
  obs::Span span("magic.answer_query", "eval");
  span.Attr("query", query.predicate);
  std::set<std::string> idb;
  for (const ast::Rule& r : program.rules) {
    if (!r.IsFact()) idb.insert(r.head.predicate);
  }
  if (idb.count(query.predicate) == 0) {
    // EDB query: load facts and select.
    DIRE_RETURN_IF_ERROR(db->LoadFacts(program));
    QueryAnswer out;
    storage::Relation* rel = db->Find(query.predicate);
    if (rel != nullptr) {
      for (storage::RowRef t : rel->rows()) {
        if (Matches(query, t, db->symbols())) {
          out.tuples.emplace_back(t.begin(), t.end());
        }
      }
    }
    return out;
  }

  DIRE_ASSIGN_OR_RETURN(MagicRewrite rewrite,
                        MagicSetTransform(program, query, options.guard));
  Evaluator evaluator(db, options);
  DIRE_ASSIGN_OR_RETURN(EvalStats stats, evaluator.Evaluate(rewrite.program));

  QueryAnswer out;
  out.stats = stats;
  storage::Relation* rel = db->Find(rewrite.answer_predicate);
  if (rel != nullptr) {
    for (storage::RowRef t : rel->rows()) {
      if (Matches(query, t, db->symbols())) {
        out.tuples.emplace_back(t.begin(), t.end());
      }
    }
  }
  return out;
}

Result<SelectResult> SelectMatching(const storage::Database& db,
                                    const ast::Atom& query,
                                    const ExecutionGuard* guard) {
  SelectResult out;
  const storage::Relation* rel = db.Find(query.predicate);
  if (rel == nullptr) return out;
  if (rel->arity() != query.args.size()) {
    return Status::InvalidArgument(
        StrFormat("relation '%s' has arity %zu, query has %zu arguments",
                  query.predicate.c_str(), rel->arity(), query.args.size()));
  }
  size_t row = 0;
  for (storage::RowRef t : rel->rows()) {
    if (guard != nullptr &&
        ((row++ & 0x3FF) == 0 || guard->TuplesExhausted())) {
      // Deadline/cancellation once per batch; the tuple budget exactly.
      if (!guard->Check().ok()) {
        out.exhausted = true;
        out.exhausted_reason = guard->trip_reason();
        return out;
      }
    }
    if (Matches(query, t, db.symbols())) {
      out.tuples.emplace_back(t.begin(), t.end());
      if (guard != nullptr) guard->AddTuples(1);
    }
  }
  return out;
}

Result<QueryAnswer> AnswerQueryByFullEvaluation(storage::Database* db,
                                                const ast::Program& program,
                                                const ast::Atom& query,
                                                const EvalOptions& options) {
  Evaluator evaluator(db, options);
  DIRE_ASSIGN_OR_RETURN(EvalStats stats, evaluator.Evaluate(program));
  QueryAnswer out;
  out.stats = stats;
  storage::Relation* rel = db->Find(query.predicate);
  if (rel != nullptr) {
    for (storage::RowRef t : rel->rows()) {
      if (Matches(query, t, db->symbols())) {
        out.tuples.emplace_back(t.begin(), t.end());
      }
    }
  }
  return out;
}

}  // namespace dire::eval
