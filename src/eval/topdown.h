#ifndef DIRE_EVAL_TOPDOWN_H_
#define DIRE_EVAL_TOPDOWN_H_

#include <map>
#include <set>
#include <string>

#include "ast/ast.h"
#include "base/guard.h"
#include "base/result.h"
#include "eval/magic.h"
#include "storage/database.h"

namespace dire::eval {

// Tabled top-down evaluation of positive Datalog — the resolution-flavoured
// counterpart to the bottom-up evaluator, in the spirit of the compiled
// top-down method of Henschen–Naqvi that the paper builds on. Goals are
// solved by rule expansion, left to right; every (predicate, binding
// pattern, bound values) call is *tabled*, so repeated and cyclic calls
// (left recursion, cyclic data) terminate: a recursive call consumes the
// answers tabled so far, and an outer fixpoint loop re-runs the computation
// until no table grows.
//
// Complexity matches magic sets (it explores the same relevant subset of
// facts); the implementation exists as an independent second opinion used
// by tests and as a reference for the technique.
class TabledTopDown {
 public:
  // Loads the program's facts into `db` lazily on first Query.
  TabledTopDown(storage::Database* db, const ast::Program& program);

  struct Stats {
    size_t tables = 0;      // Distinct tabled calls.
    size_t answers = 0;     // Tabled answer tuples.
    int outer_passes = 0;   // Fixpoint passes over the goal.
  };

  // Answers `query` (constants = bound, variables = free). Fails on
  // non-positive programs.
  Result<QueryAnswer> Query(const ast::Atom& query);

  // Bounds subsequent Query calls: SolveCall/SolveBody poll the guard and
  // abandon the search with kResourceExhausted / kCancelled when it trips.
  // Tabled answers are discarded on a trip (top-down tables are
  // call-pattern-specific, so no partial-result contract is offered here —
  // use the bottom-up evaluator for graceful degradation). Not owned.
  void set_guard(const ExecutionGuard* guard) { guard_ = guard; }

  const Stats& stats() const { return stats_; }

 private:
  struct CallKey {
    std::string predicate;
    storage::Tuple bound;  // Values at bound positions, in position order.
    std::string pattern;   // 'b'/'f' per position.

    bool operator<(const CallKey& other) const {
      if (predicate != other.predicate) return predicate < other.predicate;
      if (pattern != other.pattern) return pattern < other.pattern;
      return bound < other.bound;
    }
  };

  using Bindings = std::map<std::string, storage::ValueId>;

  Status EnsureFactsLoaded();
  // Solves the tabled call for `goal` (ground at bound positions); fills
  // its table. Re-entrant calls on an in-progress table consume the answers
  // known so far.
  Status SolveCall(const CallKey& key);
  // Left-to-right expansion of `rule` body under `bindings`; complete
  // matches append the head instance to table `key`.
  Status SolveBody(const CallKey& key, const ast::Rule& rule, size_t index,
                   Bindings* bindings);
  CallKey MakeKey(const ast::Atom& goal, const Bindings& bindings) const;

  storage::Database* db_;
  const ast::Program& program_;
  const ExecutionGuard* guard_ = nullptr;
  std::set<std::string> idb_;
  bool facts_loaded_ = false;
  bool grew_ = false;
  std::map<CallKey, std::set<storage::Tuple>> tables_;
  std::set<CallKey> in_progress_;
  std::set<CallKey> completed_this_pass_;
  Stats stats_;
};

}  // namespace dire::eval

#endif  // DIRE_EVAL_TOPDOWN_H_
