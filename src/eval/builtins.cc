#include "eval/builtins.h"

#include <cstdlib>

namespace dire::eval {
namespace {

// Three-way comparison: numeric when both spellings are decimal integers,
// lexicographic otherwise.
int Compare(const std::string& a, const std::string& b) {
  char* end_a = nullptr;
  char* end_b = nullptr;
  long va = std::strtol(a.c_str(), &end_a, 10);
  long vb = std::strtol(b.c_str(), &end_b, 10);
  bool numeric = !a.empty() && !b.empty() && *end_a == '\0' && *end_b == '\0';
  if (numeric) {
    if (va < vb) return -1;
    if (va > vb) return 1;
    return 0;
  }
  return a.compare(b) < 0 ? -1 : (a == b ? 0 : 1);
}

}  // namespace

bool IsBuiltinPredicate(const std::string& name) {
  return name == "neq" || name == "lt" || name == "leq";
}

bool EvalBuiltin(const std::string& name, const storage::SymbolTable& symbols,
                 storage::ValueId a, storage::ValueId b) {
  if (name == "neq") return a != b;
  int cmp = Compare(symbols.Name(a), symbols.Name(b));
  if (name == "lt") return cmp < 0;
  return cmp <= 0;  // leq
}

}  // namespace dire::eval
