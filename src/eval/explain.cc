#include "eval/explain.h"

#include <map>

#include "base/string_util.h"

namespace dire::eval {
namespace {

std::string SlotName(const CompiledRule& plan, int slot) {
  size_t i = static_cast<size_t>(slot);
  if (i < plan.slot_names.size()) return plan.slot_names[i];
  return StrFormat("s%d", slot);
}

std::string ArgName(const CompiledRule& plan, const ArgRef& ref,
                    const storage::SymbolTable& symbols) {
  if (ref.is_const) {
    return "'" + symbols.Name(ref.value) + "'";
  }
  return SlotName(plan, ref.slot);
}

}  // namespace

std::string ExplainPlan(const CompiledRule& plan,
                        const storage::SymbolTable& symbols) {
  std::string out = StrFormat("plan for %s/%zu (%d slots):\n",
                              plan.head_predicate.c_str(), plan.head_arity,
                              plan.num_slots);
  int step = 1;
  for (const CompiledAtom& atom : plan.body) {
    std::string access;
    if (atom.probe_position >= 0) {
      const ArgRef& ref =
          atom.args[static_cast<size_t>(atom.probe_position)];
      access = StrFormat("probe #%d=%s", atom.probe_position + 1,
                         ArgName(plan, ref, symbols).c_str());
    } else {
      access = "scan ";
    }
    std::string binds;
    for (int pos : atom.bind_positions) {
      binds += StrFormat(
          " #%d->%s", pos + 1,
          SlotName(plan, atom.args[static_cast<size_t>(pos)].slot).c_str());
    }
    std::string checks;
    for (int pos : atom.check_positions) {
      if (pos == atom.probe_position) continue;
      checks += StrFormat(
          " #%d=%s", pos + 1,
          ArgName(plan, atom.args[static_cast<size_t>(pos)], symbols)
              .c_str());
    }
    out += StrFormat("  %d. %-5s %-12s", step++, access.c_str(),
                     atom.predicate.c_str());
    if (!checks.empty()) out += " check" + checks;
    if (!binds.empty()) out += " bind" + binds;
    if (atom.source == AtomSource::kDelta) out += "  [delta]";
    out += '\n';
  }
  out += "  head:";
  for (const ArgRef& ref : plan.head_args) {
    out += ' ' + ArgName(plan, ref, symbols);
  }
  out += '\n';
  return out;
}

Result<std::string> ExplainProgram(const ast::Program& program) {
  storage::SymbolTable symbols;
  std::string out;
  for (const ast::Rule& rule : program.rules) {
    if (rule.IsFact()) continue;
    out += rule.ToString();
    out += '\n';
    DIRE_ASSIGN_OR_RETURN(CompiledRule plan, CompileRule(rule, &symbols, {}));
    out += ExplainPlan(plan, symbols);
  }
  return out;
}

}  // namespace dire::eval
