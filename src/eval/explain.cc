#include "eval/explain.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "base/string_util.h"
#include "eval/cost.h"

namespace dire::eval {
namespace {

std::string SlotName(const CompiledRule& plan, int slot) {
  size_t i = static_cast<size_t>(slot);
  if (i < plan.slot_names.size()) return plan.slot_names[i];
  return StrFormat("s%d", slot);
}

std::string ArgName(const CompiledRule& plan, const ArgRef& ref,
                    const storage::SymbolTable& symbols) {
  if (ref.is_const) {
    return "'" + symbols.Name(ref.value) + "'";
  }
  return SlotName(plan, ref.slot);
}

// Cardinality estimates are real-valued (products of 1/distinct
// selectivities); print exact integers plainly and everything else with
// three significant digits.
std::string FormatEstimate(double v) {
  if (v >= 0 && v < 1e15 && v == std::floor(v)) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.3g", v);
}

}  // namespace

std::string ExplainPlan(const CompiledRule& plan,
                        const storage::SymbolTable& symbols,
                        const std::vector<uint64_t>* actual_rows,
                        const uint64_t* actual_emitted) {
  std::string out = StrFormat("plan for %s/%zu (%d slots):\n",
                              plan.head_predicate.c_str(), plan.head_arity,
                              plan.num_slots);
  int step = 1;
  size_t atom_index = 0;
  for (const CompiledAtom& atom : plan.body) {
    std::string access;
    if (!atom.probe_positions.empty()) {
      // One "#pos=value" per probed column; several mean a composite index.
      access = "probe";
      for (int pos : atom.probe_positions) {
        const ArgRef& ref = atom.args[static_cast<size_t>(pos)];
        access += StrFormat(" #%d=%s", pos + 1,
                            ArgName(plan, ref, symbols).c_str());
      }
    } else {
      access = "scan ";
    }
    std::string binds;
    for (int pos : atom.bind_positions) {
      binds += StrFormat(
          " #%d->%s", pos + 1,
          SlotName(plan, atom.args[static_cast<size_t>(pos)].slot).c_str());
    }
    std::string checks;
    for (int pos : atom.check_positions) {
      if (std::find(atom.probe_positions.begin(), atom.probe_positions.end(),
                    pos) != atom.probe_positions.end()) {
        continue;
      }
      checks += StrFormat(
          " #%d=%s", pos + 1,
          ArgName(plan, atom.args[static_cast<size_t>(pos)], symbols)
              .c_str());
    }
    out += StrFormat("  %d. %-5s %-12s", step++, access.c_str(),
                     atom.predicate.c_str());
    if (!checks.empty()) out += " check" + checks;
    if (!binds.empty()) out += " bind" + binds;
    if (atom.source == AtomSource::kDelta) out += "  [delta]";
    if (atom.sorted_probe) out += "  idx=sorted";
    if (atom.est_rows >= 0) {
      out += "  est=" + FormatEstimate(atom.est_rows);
    }
    if (actual_rows != nullptr && atom_index < actual_rows->size()) {
      out += StrFormat(" actual=%llu",
                       static_cast<unsigned long long>(
                           (*actual_rows)[atom_index]));
    }
    out += '\n';
    ++atom_index;
  }
  if (plan.est_out_rows >= 0) {
    out += "  est out: " + FormatEstimate(plan.est_out_rows);
    if (actual_emitted != nullptr) {
      out += StrFormat(" actual=%llu",
                       static_cast<unsigned long long>(*actual_emitted));
    }
    out += '\n';
  }
  out += "  head:";
  for (const ArgRef& ref : plan.head_args) {
    out += ' ' + ArgName(plan, ref, symbols);
  }
  out += '\n';
  return out;
}

namespace {

std::string HumanDuration(int64_t ns) {
  if (ns < 10'000) return StrFormat("%lldns", static_cast<long long>(ns));
  if (ns < 10'000'000) {
    return StrFormat("%.1fus", static_cast<double>(ns) / 1e3);
  }
  if (ns < 10'000'000'000) {
    return StrFormat("%.1fms", static_cast<double>(ns) / 1e6);
  }
  return StrFormat("%.2fs", static_cast<double>(ns) / 1e9);
}

// Renders `rows` (first row = header) with each column right-aligned except
// the first, which is left-aligned and sets the indent.
std::string AlignTable(const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths;
  for (const auto& row : rows) {
    if (widths.size() < row.size()) widths.resize(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c == 0) {
        out += row[c];
        out.append(widths[c] - row[c].size(), ' ');
      } else {
        out += "  ";
        out.append(widths[c] - row[c].size(), ' ');
        out += row[c];
      }
    }
    while (!out.empty() && out.back() == ' ') out.pop_back();
    out += '\n';
  }
  return out;
}

}  // namespace

std::string FormatEvalStats(const EvalStats& stats) {
  if (stats.rule_stats.empty() && stats.stratum_stats.empty()) return "";
  std::string out;
  if (!stats.rule_stats.empty()) {
    std::vector<std::vector<std::string>> rows;
    rows.push_back(
        {"rule", "stratum", "firings", "emitted", "inserted", "time"});
    for (const RuleStats& rs : stats.rule_stats) {
      rows.push_back({rs.rule,
                      rs.stratum < 0 ? "-" : StrFormat("%d", rs.stratum),
                      StrFormat("%zu", rs.firings),
                      StrFormat("%zu", rs.tuples_emitted),
                      StrFormat("%zu", rs.tuples_inserted),
                      HumanDuration(rs.exec_ns)});
    }
    out += AlignTable(rows);
  }
  if (!stats.stratum_stats.empty()) {
    if (!out.empty()) out += '\n';
    std::vector<std::vector<std::string>> rows;
    rows.push_back(
        {"stratum", "predicates", "recursive", "rounds", "inserted", "time"});
    for (const StratumStats& ss : stats.stratum_stats) {
      rows.push_back({StrFormat("%d", ss.index), Join(ss.predicates, ","),
                      ss.recursive ? "yes" : "no",
                      StrFormat("%d", ss.rounds),
                      StrFormat("%zu", ss.tuples_inserted),
                      HumanDuration(ss.wall_ns)});
    }
    out += AlignTable(rows);
  }
  out += StrFormat(
      "\ntotal: %zu tuples derived, %zu rule firings, %d rounds, %s\n",
      stats.tuples_derived, stats.rule_firings, stats.iterations,
      stats.converged ? "converged" : "not converged");
  if (stats.exhausted) {
    out += "exhausted: " + stats.exhausted_reason + '\n';
  }
  return out;
}

Result<std::string> ExplainProgram(const ast::Program& program) {
  storage::SymbolTable symbols;
  std::string out;
  for (const ast::Rule& rule : program.rules) {
    if (rule.IsFact()) continue;
    out += rule.ToString();
    out += '\n';
    DIRE_ASSIGN_OR_RETURN(CompiledRule plan, CompileRule(rule, &symbols, {}));
    out += ExplainPlan(plan, symbols);
  }
  return out;
}

Result<std::string> ExplainProgram(const ast::Program& program,
                                   storage::Database* db,
                                   PlannerMode planner, bool with_actuals) {
  DatabaseStatsProvider stats(db);
  CompileOptions copts;
  copts.planner = planner;
  copts.stats = &stats;
  std::string out;
  for (const ast::Rule& rule : program.rules) {
    if (rule.IsFact()) continue;
    out += rule.ToString();
    out += '\n';
    DIRE_ASSIGN_OR_RETURN(CompiledRule plan,
                          CompileRule(rule, &db->symbols(), copts));
    if (!with_actuals) {
      out += ExplainPlan(plan, db->symbols());
      continue;
    }
    auto resolve_mut = [db](const CompiledAtom& atom) {
      return db->Find(atom.predicate);
    };
    PrepareIndexes(plan, resolve_mut);
    RelationResolver resolve =
        [db](const CompiledAtom& atom) -> const storage::Relation* {
      return db->Find(atom.predicate);
    };
    std::vector<uint64_t> actual;
    uint64_t emitted = 0;
    CountAtomMatches(plan, resolve, &db->symbols(), &actual, &emitted);
    out += ExplainPlan(plan, db->symbols(), &actual, &emitted);
  }
  return out;
}

}  // namespace dire::eval
