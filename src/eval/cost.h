#ifndef DIRE_EVAL_COST_H_
#define DIRE_EVAL_COST_H_

#include <functional>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "eval/plan.h"
#include "storage/database.h"
#include "storage/relation.h"

namespace dire::eval {

// Cardinality-based cost model behind PlannerMode::kCost. The planner
// greedily orders a rule's positive body atoms by estimated match
// cardinality, computed from two cheap live statistics per relation —
// row count and per-column approximate distinct counts (see
// storage::ColumnSketch) — with the textbook independence assumptions:
// an equality constraint on column c keeps a 1/distinct(c) fraction of
// the rows, and constraints on different columns are independent.

// The statistics the cost model reads for one relation.
struct RelationEstimate {
  double rows = 0;
  // Per-column approximate distinct counts, clamped to >= 1 when the
  // relation is nonempty. Size equals the relation's arity.
  std::vector<double> distinct;
};

// Supplies per-relation statistics to the planner. Lookup returns false
// when the predicate has no relation yet (the planner then treats it as
// empty, which is what a missing relation yields at execution time).
class StatsProvider {
 public:
  virtual ~StatsProvider() = default;
  virtual bool Lookup(const std::string& predicate, AtomSource source,
                      RelationEstimate* out) const = 0;
};

// StatsProvider over a Database's live relations. kDelta lookups go
// through `delta_lookup` when provided (the semi-naive evaluator passes
// its per-predicate delta relations); otherwise they fall back to the
// full relation.
class DatabaseStatsProvider : public StatsProvider {
 public:
  using DeltaLookup =
      std::function<const storage::Relation*(const std::string&)>;

  explicit DatabaseStatsProvider(const storage::Database* db,
                                 DeltaLookup delta_lookup = nullptr)
      : db_(db), delta_lookup_(std::move(delta_lookup)) {}

  bool Lookup(const std::string& predicate, AtomSource source,
              RelationEstimate* out) const override;

 private:
  const storage::Database* db_;
  DeltaLookup delta_lookup_;
};

// One step of a chosen join order, over the rule's positive atoms only.
struct OrderStep {
  // Index into the original rule body.
  size_t body_index = 0;
  // Estimated rows of the relation the atom reads.
  double scan_rows = 0;
  // Estimated cumulative join cardinality after this atom executes (the
  // running frontier: product of per-atom match estimates so far).
  double out_rows = 0;
};

struct JoinOrder {
  std::vector<OrderStep> steps;
  // Estimated head tuples emitted per firing, pre-dedup (the frontier
  // after the last positive atom; negation and builtins only shrink it).
  double est_out_rows = 0;
};

// Chooses the execution order of `rule`'s positive body atoms: the delta
// atom (when >= 0) leads, then repeatedly the atom with the smallest
// estimated match cardinality given the variables bound so far, ties
// broken by the lower body index so plans are reproducible run to run.
// Negated atoms and builtins are not ordered here (CompileRule appends
// them after every positive atom).
JoinOrder ChooseJoinOrder(const ast::Rule& rule, const StatsProvider& stats,
                          int delta_atom);

// Index-kind choice for a single-column probe: true when the sorted-run
// index is estimated cheaper than the hash index for a relation of `rows`
// rows probed about `est_probes` times per firing. Hash pays a heavy
// per-row build (bucket-map nodes) but O(1) probes; sorted runs build by
// sorting row ids and pay O(log rows) per probe — so sorted wins for
// small relations or few probes, and the high-probe-count inner loops of
// recursive strata stay on hash. Deterministic (pure function of the two
// estimates), so plans are reproducible run to run.
bool PreferSortedProbe(double rows, double est_probes);

}  // namespace dire::eval

#endif  // DIRE_EVAL_COST_H_
