#include "eval/evaluator.h"

#include <set>

#include "ast/dependency.h"
#include "base/failpoints.h"
#include "base/string_util.h"
#include "eval/builtins.h"

namespace dire::eval {
namespace {

// Recursive nested-loop join with index probes over the compiled atom order.
class RuleExecutor {
 public:
  RuleExecutor(const CompiledRule& rule, const RelationResolver& resolve,
               const TupleSink& sink, const storage::SymbolTable* symbols,
               const ExecutionGuard* guard)
      : rule_(rule), resolve_(resolve), sink_(sink), symbols_(symbols),
        guard_(guard) {
    slots_.resize(static_cast<size_t>(rule.num_slots));
  }

  void Run() { Descend(0); }

 private:
  void Descend(size_t atom_index) {
    // Poll the guard every 1024 descents so even a single cartesian join
    // stops promptly on a deadline or cancellation; once stopped, the whole
    // recursion unwinds without emitting further tuples.
    if (stopped_) return;
    if (guard_ != nullptr && (++ops_ & 1023u) == 0 && !guard_->Check().ok()) {
      stopped_ = true;
      return;
    }
    if (atom_index == rule_.body.size()) {
      Emit();
      return;
    }
    const CompiledAtom& atom = rule_.body[atom_index];
    if (atom.builtin) {
      // Both positions are bound; evaluate the comparison directly.
      if (symbols_ != nullptr &&
          EvalBuiltin(atom.predicate, *symbols_, ValueAt(atom, 0),
                      ValueAt(atom, 1))) {
        Descend(atom_index + 1);
      }
      return;
    }
    storage::Relation* rel = resolve_(atom);
    if (atom.negated) {
      // All positions are bound: continue iff the tuple is absent.
      storage::Tuple key;
      key.reserve(atom.args.size());
      for (const ArgRef& ref : atom.args) {
        key.push_back(ref.is_const ? ref.value
                                   : slots_[static_cast<size_t>(ref.slot)]);
      }
      if (rel == nullptr || !rel->Contains(key)) Descend(atom_index + 1);
      return;
    }
    if (rel == nullptr || rel->empty()) return;
    // Projection pushdown: when some of this atom's bindings are dead
    // (never read downstream), only the distinct live projections matter;
    // deduplicate on them so a high-multiplicity scan cannot multiply the
    // continuation (e.g. buys(X,Y) :- trendy(X), buys(Z,Y): each distinct Y
    // continues once, not once per Z).
    std::set<storage::Tuple> seen_projections;
    std::set<storage::Tuple>* seen =
        atom.live_bind_positions.size() != atom.bind_positions.size()
            ? &seen_projections
            : nullptr;
    if (atom.probe_position >= 0) {
      size_t pos = static_cast<size_t>(atom.probe_position);
      const ArgRef& ref = atom.args[pos];
      storage::ValueId key =
          ref.is_const ? ref.value : slots_[static_cast<size_t>(ref.slot)];
      for (uint32_t row : rel->Probe(pos, key)) {
        TryTuple(atom, rel->tuples()[row], atom_index, seen);
      }
    } else {
      // Note: body relations are never mutated during a pass (derived tuples
      // flow through the sink into a staging relation), so iterating tuples() is safe.
      for (const storage::Tuple& t : rel->tuples()) {
        TryTuple(atom, t, atom_index, seen);
      }
    }
  }

  void TryTuple(const CompiledAtom& atom, const storage::Tuple& t,
                size_t atom_index, std::set<storage::Tuple>* seen) {
    // Bind before checking: a check position may test a variable bound by an
    // earlier position of this same atom (repeated variables, e.g. e(X,X)).
    for (int pos : atom.bind_positions) {
      const ArgRef& ref = atom.args[static_cast<size_t>(pos)];
      slots_[static_cast<size_t>(ref.slot)] = t[static_cast<size_t>(pos)];
    }
    for (int pos : atom.check_positions) {
      const ArgRef& ref = atom.args[static_cast<size_t>(pos)];
      storage::ValueId want =
          ref.is_const ? ref.value : slots_[static_cast<size_t>(ref.slot)];
      if (t[static_cast<size_t>(pos)] != want) return;
    }
    if (seen != nullptr) {
      storage::Tuple projection;
      projection.reserve(atom.live_bind_positions.size());
      for (int pos : atom.live_bind_positions) {
        projection.push_back(t[static_cast<size_t>(pos)]);
      }
      if (!seen->insert(std::move(projection)).second) return;
    }
    Descend(atom_index + 1);
  }

  storage::ValueId ValueAt(const CompiledAtom& atom, size_t pos) const {
    const ArgRef& ref = atom.args[pos];
    return ref.is_const ? ref.value : slots_[static_cast<size_t>(ref.slot)];
  }

  void Emit() {
    scratch_.clear();
    for (const ArgRef& ref : rule_.head_args) {
      scratch_.push_back(ref.is_const ? ref.value
                                      : slots_[static_cast<size_t>(ref.slot)]);
    }
    sink_(scratch_);
  }

  const CompiledRule& rule_;
  const RelationResolver& resolve_;
  const TupleSink& sink_;
  const storage::SymbolTable* symbols_;
  const ExecutionGuard* guard_;
  std::vector<storage::ValueId> slots_;
  storage::Tuple scratch_;
  uint32_t ops_ = 0;
  bool stopped_ = false;
};

}  // namespace

void ExecuteRule(const CompiledRule& rule, const RelationResolver& resolve,
                 const TupleSink& sink, const storage::SymbolTable* symbols,
                 const ExecutionGuard* guard) {
  RuleExecutor(rule, resolve, sink, symbols, guard).Run();
}

Status EvalOptions::Validate() const {
  if (max_iterations < 0) {
    return Status::InvalidArgument(
        StrFormat("max_iterations must be >= 0, got %d", max_iterations));
  }
  if (!stop_on_fixpoint && max_iterations == 0) {
    return Status::InvalidArgument(
        "stop_on_fixpoint=false requires max_iterations > 0");
  }
  if (checkpoint_every_rounds < 0) {
    return Status::InvalidArgument(
        StrFormat("checkpoint_every_rounds must be >= 0, got %d",
                  checkpoint_every_rounds));
  }
  if (checkpoint_every_rounds > 0 && checkpointer == nullptr) {
    return Status::InvalidArgument(
        "checkpoint_every_rounds requires a checkpointer");
  }
  return Status::Ok();
}

Status Evaluator::MaybeCheckpoint(int stratum_index, int rounds_done,
                                  const DeltaMap* deltas) {
  if (options_.checkpointer == nullptr) return Status::Ok();
  DIRE_FAILPOINT("eval.checkpoint");
  return options_.checkpointer->Checkpoint(stratum_index, rounds_done, deltas);
}

Status Evaluator::GuardCheck(EvalStats* stats, bool* stop) {
  if (options_.guard == nullptr) return Status::Ok();
  options_.guard->SetMemoryUsage(db_->ApproxBytes());
  Status s = options_.guard->Check();
  if (s.ok()) return s;
  if (options_.on_exhaustion == EvalOptions::OnExhaustion::kError) return s;
  *stop = true;
  stats->converged = false;
  stats->exhausted = true;
  stats->exhausted_reason = options_.guard->trip_reason();
  return Status::Ok();
}

Status Evaluator::MergeStaging(const storage::Relation& staging,
                               const std::string& predicate,
                               storage::Relation* head,
                               storage::Relation* delta, EvalStats* stats) {
  const ExecutionGuard* guard = options_.guard;
  for (const storage::Tuple& t : staging.tuples()) {
    // Stop before exceeding the tuple budget: the budget trips exactly at
    // its limit, and everything inserted so far is a sound derivation.
    if (guard != nullptr && guard->TuplesExhausted()) break;
    DIRE_FAILPOINT("storage.relation_insert");
    if (head->Insert(t)) {
      ++stats->tuples_derived;
      Note(predicate, t);
      if (delta != nullptr) delta->Insert(t);
      if (guard != nullptr) guard->AddTuples(1);
    }
  }
  return Status::Ok();
}

Result<EvalStats> Evaluator::Evaluate(const ast::Program& program,
                                      const ResumePoint* resume) {
  DIRE_RETURN_IF_ERROR(options_.Validate());
  DIRE_RETURN_IF_ERROR(db_->LoadFacts(program));

  // Make sure every head relation exists, so queries over empty results work.
  std::vector<ast::Rule> proper_rules;
  for (const ast::Rule& r : program.rules) {
    if (r.IsFact()) continue;
    DIRE_RETURN_IF_ERROR(
        db_->GetOrCreate(r.head.predicate, r.head.arity()).ok()
            ? Status::Ok()
            : db_->GetOrCreate(r.head.predicate, r.head.arity()).status());
    proper_rules.push_back(r);
  }

  ast::DependencyGraph deps(program);
  if (!deps.IsStratified()) {
    return Status::InvalidArgument("program is not stratifiable: " +
                                   deps.StratificationViolation());
  }
  const std::vector<std::vector<std::string>>& strata = deps.Strata();
  EvalStats total;
  bool exhausted_stop = false;
  for (size_t si = 0; si < strata.size(); ++si) {
    // A resumed run skips completed strata: their derivations are already in
    // the (recovered) database. Stratum order is a pure function of the
    // program, so indices line up with the checkpointing run.
    if (resume != nullptr && static_cast<int>(si) < resume->stratum_index) {
      continue;
    }
    const std::vector<std::string>& stratum = strata[si];
    std::vector<ast::Rule> stratum_rules;
    std::set<std::string> members(stratum.begin(), stratum.end());
    for (const ast::Rule& r : proper_rules) {
      if (members.count(r.head.predicate) != 0) stratum_rules.push_back(r);
    }
    if (stratum_rules.empty()) continue;
    DIRE_FAILPOINT("eval.stratum");
    bool stop = false;
    DIRE_RETURN_IF_ERROR(GuardCheck(&total, &stop));
    if (stop) {  // Completed strata stand; later ones never start.
      exhausted_stop = true;
      DIRE_RETURN_IF_ERROR(
          MaybeCheckpoint(static_cast<int>(si), 0, /*deltas=*/nullptr));
      break;
    }
    const ResumePoint* stratum_resume =
        resume != nullptr && static_cast<int>(si) == resume->stratum_index
            ? resume
            : nullptr;
    DIRE_ASSIGN_OR_RETURN(
        EvalStats s, EvaluateStratum(stratum_rules, stratum,
                                     static_cast<int>(si), stratum_resume));
    total.iterations += s.iterations;
    total.tuples_derived += s.tuples_derived;
    total.rule_firings += s.rule_firings;
    total.converged = total.converged && s.converged;
    if (s.exhausted) {
      total.exhausted = true;
      total.exhausted_reason = s.exhausted_reason;
      exhausted_stop = true;
      // The in-flight stratum restarts from its merged state on resume (the
      // guard may have tripped mid-round, where no delta frontier is
      // consistent).
      DIRE_RETURN_IF_ERROR(
          MaybeCheckpoint(static_cast<int>(si), 0, /*deltas=*/nullptr));
      break;
    }
    DIRE_RETURN_IF_ERROR(
        MaybeCheckpoint(static_cast<int>(si) + 1, 0, /*deltas=*/nullptr));
  }
  if (!exhausted_stop) {
    // Final checkpoint: everything is complete; a recovery of this state
    // resumes past the last stratum and re-derives nothing.
    DIRE_RETURN_IF_ERROR(MaybeCheckpoint(static_cast<int>(strata.size()), 0,
                                         /*deltas=*/nullptr));
  }
  return total;
}

Result<EvalStats> Evaluator::EvaluateOnce(const std::vector<ast::Rule>& rules) {
  EvalStats stats;
  stats.iterations = 1;
  for (const ast::Rule& r : rules) {
    bool stop = false;
    DIRE_RETURN_IF_ERROR(GuardCheck(&stats, &stop));
    if (stop) break;
    if (r.IsFact()) {
      DIRE_RETURN_IF_ERROR(db_->AddFact(r.head));
      continue;
    }
    CompileOptions copts;
    copts.reorder = options_.reorder_atoms;
    DIRE_ASSIGN_OR_RETURN(CompiledRule plan,
                          CompileRule(r, &db_->symbols(), copts));
    DIRE_ASSIGN_OR_RETURN(storage::Relation * head,
                          db_->GetOrCreate(plan.head_predicate,
                                           plan.head_arity));
    auto resolve = [this](const CompiledAtom& atom) {
      return db_->Find(atom.predicate);
    };
    storage::Relation staging("$staging", head->arity());
    ++provenance_round_;  // Later rules may read this rule's output.
    ExecuteRule(plan, resolve,
                [&staging](const storage::Tuple& t) { staging.Insert(t); },
                &db_->symbols(), options_.guard);
    ++stats.rule_firings;
    DIRE_RETURN_IF_ERROR(MergeStaging(staging, plan.head_predicate, head,
                                      /*delta=*/nullptr, &stats));
  }
  return stats;
}

Result<EvalStats> Evaluator::EvaluateStratum(
    const std::vector<ast::Rule>& rules,
    const std::vector<std::string>& stratum, int stratum_index,
    const ResumePoint* resume) {
  // A stratum needs fixpoint iteration only if some rule reads a predicate
  // defined in the same stratum.
  std::set<std::string> members(stratum.begin(), stratum.end());
  bool recursive = false;
  for (const ast::Rule& r : rules) {
    for (const ast::Atom& a : r.body) {
      if (members.count(a.predicate) != 0) recursive = true;
    }
  }
  if (!recursive) return EvaluateOnce(rules);
  if (options_.mode == EvalOptions::Mode::kNaive) {
    return NaiveFixpoint(rules, stratum_index);
  }
  return SemiNaiveFixpoint(rules, stratum, stratum_index, resume);
}

Result<EvalStats> Evaluator::NaiveFixpoint(const std::vector<ast::Rule>& rules,
                                           int stratum_index) {
  std::vector<CompiledRule> plans;
  std::vector<storage::Relation*> heads;
  for (const ast::Rule& r : rules) {
    CompileOptions copts;
    copts.reorder = options_.reorder_atoms;
    DIRE_ASSIGN_OR_RETURN(CompiledRule plan,
                          CompileRule(r, &db_->symbols(), copts));
    DIRE_ASSIGN_OR_RETURN(
        storage::Relation * head,
        db_->GetOrCreate(plan.head_predicate, plan.head_arity));
    plans.push_back(std::move(plan));
    heads.push_back(head);
  }
  auto resolve = [this](const CompiledAtom& atom) {
    return db_->Find(atom.predicate);
  };

  EvalStats stats;
  while (true) {
    if (options_.max_iterations > 0 &&
        stats.iterations >= options_.max_iterations) {
      stats.converged = !options_.stop_on_fixpoint ? true : false;
      break;
    }
    bool stop = false;
    DIRE_RETURN_IF_ERROR(GuardCheck(&stats, &stop));
    if (stop) break;
    ++stats.iterations;
    size_t before = stats.tuples_derived;
    for (size_t i = 0; i < plans.size(); ++i) {
      DIRE_RETURN_IF_ERROR(GuardCheck(&stats, &stop));
      if (stop) return stats;
      storage::Relation staging("$staging", heads[i]->arity());
      ++provenance_round_;
      ExecuteRule(plans[i], resolve,
                  [&staging](const storage::Tuple& t) { staging.Insert(t); },
                  &db_->symbols(), options_.guard);
      ++stats.rule_firings;
      DIRE_RETURN_IF_ERROR(MergeStaging(staging, plans[i].head_predicate,
                                        heads[i], /*delta=*/nullptr, &stats));
    }
    if (options_.stop_on_fixpoint && stats.tuples_derived == before) break;
    // Naive evaluation has no delta frontier; a mid-stratum checkpoint
    // restarts the stratum from the merged state on resume.
    if (options_.checkpoint_every_rounds > 0 &&
        stats.iterations % options_.checkpoint_every_rounds == 0) {
      DIRE_RETURN_IF_ERROR(
          MaybeCheckpoint(stratum_index, 0, /*deltas=*/nullptr));
    }
  }
  return stats;
}

Result<EvalStats> Evaluator::SemiNaiveFixpoint(
    const std::vector<ast::Rule>& rules,
    const std::vector<std::string>& stratum, int stratum_index,
    const ResumePoint* resume) {
  std::set<std::string> members(stratum.begin(), stratum.end());

  // Plain plans (all-full) run once to seed the deltas; differentiated
  // variants (one stratum-IDB occurrence reads the delta) run each round.
  struct Variant {
    CompiledRule plan;
    storage::Relation* head;
  };
  std::vector<Variant> seed_plans;
  std::vector<Variant> delta_plans;
  for (const ast::Rule& r : rules) {
    CompileOptions copts;
    copts.reorder = options_.reorder_atoms;
    DIRE_ASSIGN_OR_RETURN(CompiledRule plan,
                          CompileRule(r, &db_->symbols(), copts));
    DIRE_ASSIGN_OR_RETURN(
        storage::Relation * head,
        db_->GetOrCreate(plan.head_predicate, plan.head_arity));
    seed_plans.push_back(Variant{std::move(plan), head});
    for (size_t j = 0; j < r.body.size(); ++j) {
      if (r.body[j].negated || members.count(r.body[j].predicate) == 0) {
        continue;
      }
      CompileOptions dopts;
      dopts.reorder = options_.reorder_atoms;
      dopts.delta_atom = static_cast<int>(j);
      DIRE_ASSIGN_OR_RETURN(CompiledRule dplan,
                            CompileRule(r, &db_->symbols(), dopts));
      delta_plans.push_back(Variant{std::move(dplan), head});
    }
  }

  // Per-predicate delta relations, double buffered.
  DeltaMap delta;
  DeltaMap next_delta;
  for (const std::string& p : stratum) {
    storage::Relation* full = db_->Find(p);
    if (full == nullptr) continue;  // Stratum member without rules or facts.
    delta[p] = std::make_unique<storage::Relation>(p, full->arity());
    next_delta[p] = std::make_unique<storage::Relation>(p, full->arity());
  }

  // A delta-bearing checkpoint lets us continue exactly where the crashed
  // run stopped: restore its frontier instead of re-seeding. The frontier's
  // tuples are already merged into the full relations (the checkpoint ran
  // after MergeStaging), so only the delta buffers need refilling.
  const bool resuming_deltas = resume != nullptr && resume->have_deltas;
  if (resuming_deltas) {
    for (const auto& [p, rel] : resume->deltas) {
      auto it = delta.find(p);
      if (it == delta.end()) {
        return Status::InvalidArgument(
            "checkpointed delta for '" + p +
            "' does not name a predicate of the resumed stratum");
      }
      if (rel->arity() != it->second->arity()) {
        return Status::InvalidArgument(StrFormat(
            "checkpointed delta for '%s' has arity %zu, stratum expects %zu",
            p.c_str(), rel->arity(), it->second->arity()));
      }
      for (const storage::Tuple& t : rel->tuples()) it->second->Insert(t);
    }
  }
  // Round counter continuous with the checkpointing run, so "every N rounds"
  // stays on the same cadence across a crash.
  int absolute_round = resume != nullptr ? resume->rounds_done : 0;

  auto resolve_full = [this](const CompiledAtom& atom) {
    return db_->Find(atom.predicate);
  };
  auto resolve_delta = [this, &delta](const CompiledAtom& atom) {
    if (atom.source == AtomSource::kDelta) {
      auto it = delta.find(atom.predicate);
      return it == delta.end() ? nullptr : it->second.get();
    }
    return db_->Find(atom.predicate);
  };

  EvalStats stats;

  // Seed round: evaluate every rule on the current database. A resume with a
  // restored frontier skips it — the crashed run already seeded and merged.
  if (!resuming_deltas) {
    ++stats.iterations;
    ++absolute_round;
    for (Variant& v : seed_plans) {
      bool stop = false;
      DIRE_RETURN_IF_ERROR(GuardCheck(&stats, &stop));
      if (stop) return stats;
      storage::Relation staging("$staging", v.plan.head_arity);
      ++provenance_round_;
      ExecuteRule(v.plan, resolve_full,
                  [&staging](const storage::Tuple& t) { staging.Insert(t); },
                  &db_->symbols(), options_.guard);
      ++stats.rule_firings;
      DIRE_RETURN_IF_ERROR(MergeStaging(staging, v.plan.head_predicate, v.head,
                                        delta[v.plan.head_predicate].get(),
                                        &stats));
    }
    if (options_.checkpoint_every_rounds > 0 &&
        absolute_round % options_.checkpoint_every_rounds == 0) {
      DIRE_RETURN_IF_ERROR(
          MaybeCheckpoint(stratum_index, absolute_round, &delta));
    }
  }

  while (true) {
    if (options_.stop_on_fixpoint) {
      bool any_delta = false;
      for (const auto& [p, rel] : delta) any_delta |= !rel->empty();
      if (!any_delta) break;
    }
    if (options_.max_iterations > 0 &&
        stats.iterations >= options_.max_iterations) {
      stats.converged = options_.stop_on_fixpoint ? false : true;
      break;
    }
    bool stop = false;
    DIRE_RETURN_IF_ERROR(GuardCheck(&stats, &stop));
    if (stop) break;
    ++stats.iterations;
    ++absolute_round;
    for (Variant& v : delta_plans) {
      DIRE_RETURN_IF_ERROR(GuardCheck(&stats, &stop));
      if (stop) return stats;
      storage::Relation staging("$staging", v.plan.head_arity);
      ++provenance_round_;
      ExecuteRule(v.plan, resolve_delta,
                  [&staging](const storage::Tuple& t) { staging.Insert(t); },
                  &db_->symbols(), options_.guard);
      ++stats.rule_firings;
      DIRE_RETURN_IF_ERROR(MergeStaging(staging, v.plan.head_predicate,
                                        v.head,
                                        next_delta[v.plan.head_predicate].get(),
                                        &stats));
    }
    for (auto& [p, rel] : delta) {
      rel->Clear();
      std::swap(delta[p], next_delta[p]);
    }
    // Clean round boundary: full relations hold every derivation through
    // `absolute_round` and `delta` is exactly the frontier for the next one,
    // so this pair is a consistent mid-stratum checkpoint.
    if (options_.checkpoint_every_rounds > 0 &&
        absolute_round % options_.checkpoint_every_rounds == 0) {
      DIRE_RETURN_IF_ERROR(
          MaybeCheckpoint(stratum_index, absolute_round, &delta));
    }
  }
  return stats;
}

}  // namespace dire::eval
