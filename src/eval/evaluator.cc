#include "eval/evaluator.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <set>
#include <unordered_set>

#include "ast/dependency.h"
#include "base/failpoints.h"
#include "base/hash.h"
#include "base/log.h"
#include "base/obs.h"
#include "base/string_util.h"
#include "eval/builtins.h"
#include "eval/cost.h"

namespace dire::eval {
namespace {

// Projection-dedup set: keyed on the live projection of a scanned tuple
// (see Descend), hot enough that the hash set beats an ordered tree.
// Transparent hashing: membership is checked against a reused scratch
// buffer, so only first-seen projections materialize a Tuple.
using SeenSet = std::unordered_set<storage::Tuple, storage::TupleViewHash,
                                   storage::TupleViewEq>;

// Sentinel for "no row-range restriction" (full execution of the plan).
constexpr size_t kNoRange = static_cast<size_t>(-1);

// Recursive nested-loop join with index probes over the compiled atom
// order. Relations are frozen views: only their const surface is touched
// (PrepareIndexes must have built every probed index beforehand), so
// several executors may run concurrently over the same relations.
class RuleExecutor {
 public:
  RuleExecutor(const CompiledRule& rule, const RelationResolver& resolve,
               const TupleSink& sink, const storage::SymbolTable* symbols,
               const ExecutionGuard* guard, size_t begin_row = 0,
               size_t end_row = kNoRange,
               std::vector<uint64_t>* counts = nullptr)
      : rule_(rule), resolve_(resolve), sink_(sink), symbols_(symbols),
        guard_(guard), begin_row_(begin_row), end_row_(end_row),
        counts_(counts) {
    slots_.resize(static_cast<size_t>(rule.num_slots));
    // Per-depth sorted-probe result buffers: a probe at depth d iterates
    // its buffer while deeper atoms run their own probes, so the buffers
    // cannot be shared across depths (they are reused across iterations at
    // the same depth, so steady-state probes allocate nothing).
    sorted_rows_.resize(rule.body.size());
  }

  void Run() { Descend(0); }

 private:
  void Descend(size_t atom_index) {
    // Poll the guard every 1024 descents so even a single cartesian join
    // stops promptly on a deadline or cancellation; once stopped, the whole
    // recursion unwinds without emitting further tuples.
    if (stopped_) return;
    if (guard_ != nullptr && (++ops_ & 1023u) == 0 && !guard_->Check().ok()) {
      stopped_ = true;
      return;
    }
    if (atom_index == rule_.body.size()) {
      Emit();
      return;
    }
    const CompiledAtom& atom = rule_.body[atom_index];
    if (atom.builtin) {
      // Both positions are bound; evaluate the comparison directly.
      if (symbols_ != nullptr &&
          EvalBuiltin(atom.predicate, *symbols_, ValueAt(atom, 0),
                      ValueAt(atom, 1))) {
        Count(atom_index);
        Descend(atom_index + 1);
      }
      return;
    }
    const storage::Relation* rel = resolve_(atom);
    if (atom.negated) {
      // All positions are bound: continue iff the tuple is absent. The key
      // scratch is done with before the recursion continues, so one shared
      // buffer serves every depth (and the check allocates nothing).
      key_scratch_.clear();
      for (const ArgRef& ref : atom.args) {
        key_scratch_.push_back(
            ref.is_const ? ref.value : slots_[static_cast<size_t>(ref.slot)]);
      }
      if (rel == nullptr || !rel->Contains(key_scratch_)) {
        Count(atom_index);
        Descend(atom_index + 1);
      }
      return;
    }
    if (rel == nullptr || rel->empty()) return;
    // Projection pushdown: when some of this atom's bindings are dead
    // (never read downstream), only the distinct live projections matter;
    // deduplicate on them so a high-multiplicity scan cannot multiply the
    // continuation (e.g. buys(X,Y) :- trendy(X), buys(Z,Y): each distinct Y
    // continues once, not once per Z).
    SeenSet seen_projections;
    SeenSet* seen =
        atom.live_bind_positions.size() != atom.bind_positions.size()
            ? &seen_projections
            : nullptr;
    if (atom_index == 0 && end_row_ != kNoRange) {
      // One chunk of a parallel firing: drive the join from rows
      // [begin_row_, end_row_) of the first atom's relation, skipping its
      // probe (the checks in TryTuple still filter, and a probe's bucket
      // yields matches in row order, so the chunks' concatenated output is
      // exactly the unrestricted execution's).
      size_t end = std::min(end_row_, rel->size());
      for (size_t row = begin_row_; row < end; ++row) {
        TryTuple(atom, rel->row(row), atom_index, seen);
      }
      return;
    }
    if (atom.bind_positions.empty()) {
      // Fully bound atom: every position is a constant or an
      // already-bound variable, so at most one row can match — a
      // membership probe on the dedup table. No index is built or read
      // (PrepareIndexes skips these atoms); this keeps e.g. DRed's
      // rederivation checks from paying a relation-sized composite index
      // build for what is a point lookup. `seen` is necessarily null here
      // (no bindings, so live == bound == none).
      key_scratch_.clear();
      for (size_t pos = 0; pos < atom.args.size(); ++pos) {
        key_scratch_.push_back(ValueAt(atom, pos));
      }
      if (rel->Contains(key_scratch_)) {
        Count(atom_index);
        Descend(atom_index + 1);
      }
      return;
    }
    const size_t single_pos =
        atom.probe_positions.size() == 1
            ? static_cast<size_t>(atom.probe_positions.front())
            : 0;
    if (atom.probe_positions.size() > 1 &&
        rel->HasCompositeIndex(atom.probe_positions)) {
      // Multi-bound atom: probe the composite index over all bound
      // positions, touching exactly the matching rows. The key scratch is
      // only read during the transparent bucket lookup, so the shared
      // buffer is safe (and the probe allocates nothing).
      key_scratch_.clear();
      for (int pos : atom.probe_positions) {
        key_scratch_.push_back(ValueAt(atom, static_cast<size_t>(pos)));
      }
      for (uint32_t row : rel->ProbeCompositeFrozen(atom.probe_positions,
                                                    key_scratch_)) {
        TryTuple(atom, rel->row(row), atom_index, seen);
      }
    } else if (atom.probe_positions.size() == 1 && atom.sorted_probe &&
               rel->HasSortedIndex(single_pos)) {
      // Planner chose the sorted-run index for this probe. Matches come
      // back in ascending row order — exactly the hash bucket's order — so
      // the choice cannot change results.
      std::vector<uint32_t>& rows = sorted_rows_[atom_index];
      rows.clear();
      rel->ProbeSortedFrozen(single_pos, ValueAt(atom, single_pos), &rows);
      for (uint32_t row : rows) {
        TryTuple(atom, rel->row(row), atom_index, seen);
      }
    } else if (atom.probe_positions.size() == 1 && rel->HasIndex(single_pos)) {
      for (uint32_t row : rel->ProbeFrozen(single_pos,
                                           ValueAt(atom, single_pos))) {
        TryTuple(atom, rel->row(row), atom_index, seen);
      }
    } else {
      // No prepared index (a caller skipped PrepareIndexes, or the probe
      // set's index was dropped): fall back to the scan — TryTuple's checks
      // filter to the same rows, in the same order.
      // Note: body relations are never mutated during a pass (derived tuples
      // flow through the sink into a staging relation), so iterating rows()
      // is safe.
      for (storage::RowRef t : rel->rows()) {
        TryTuple(atom, t, atom_index, seen);
      }
    }
  }

  void TryTuple(const CompiledAtom& atom, storage::RowRef t,
                size_t atom_index, SeenSet* seen) {
    // Bind before checking: a check position may test a variable bound by an
    // earlier position of this same atom (repeated variables, e.g. e(X,X)).
    for (int pos : atom.bind_positions) {
      const ArgRef& ref = atom.args[static_cast<size_t>(pos)];
      slots_[static_cast<size_t>(ref.slot)] = t[static_cast<size_t>(pos)];
    }
    for (int pos : atom.check_positions) {
      const ArgRef& ref = atom.args[static_cast<size_t>(pos)];
      storage::ValueId want =
          ref.is_const ? ref.value : slots_[static_cast<size_t>(ref.slot)];
      if (t[static_cast<size_t>(pos)] != want) return;
    }
    // Count matches before projection dedup: est_rows models the join
    // cardinality, and deduped continuations are still matches.
    Count(atom_index);
    if (seen != nullptr) {
      // Transparent membership test on the scratch projection: a repeat
      // costs a hash and compare, only a first-seen projection copies into
      // an owning Tuple. The scratch is finished with before the recursion
      // continues, so the shared buffer is safe.
      proj_scratch_.clear();
      for (int pos : atom.live_bind_positions) {
        proj_scratch_.push_back(t[static_cast<size_t>(pos)]);
      }
      if (seen->find(storage::RowRef(proj_scratch_)) != seen->end()) return;
      seen->emplace(proj_scratch_.begin(), proj_scratch_.end());
    }
    Descend(atom_index + 1);
  }

  storage::ValueId ValueAt(const CompiledAtom& atom, size_t pos) const {
    const ArgRef& ref = atom.args[pos];
    return ref.is_const ? ref.value : slots_[static_cast<size_t>(ref.slot)];
  }

  void Count(size_t atom_index) {
    if (counts_ != nullptr) ++(*counts_)[atom_index];
  }

  void Emit() {
    scratch_.clear();
    for (const ArgRef& ref : rule_.head_args) {
      scratch_.push_back(ref.is_const ? ref.value
                                      : slots_[static_cast<size_t>(ref.slot)]);
    }
    // Hash once at emission; every downstream dedup check (head fast path,
    // staging insert) reuses it through the *Hashed entry points.
    sink_(scratch_, storage::Relation::HashRow(scratch_));
  }

  const CompiledRule& rule_;
  const RelationResolver& resolve_;
  const TupleSink& sink_;
  const storage::SymbolTable* symbols_;
  const ExecutionGuard* guard_;
  const size_t begin_row_;
  const size_t end_row_;
  std::vector<uint64_t>* counts_;
  std::vector<storage::ValueId> slots_;
  storage::Tuple scratch_;
  // Reused scratch buffers; see the comments at their uses for why sharing
  // across recursion depths is safe (or, for sorted_rows_, why it is not).
  storage::Tuple key_scratch_;
  storage::Tuple proj_scratch_;
  std::vector<std::vector<uint32_t>> sorted_rows_;
  uint32_t ops_ = 0;
  bool stopped_ = false;
};

// Metric series used by the evaluator, resolved once per process.
struct EvalMetrics {
  obs::Counter* evaluations;
  obs::Counter* strata;
  obs::Counter* rounds;
  obs::Counter* rule_firings;
  obs::Counter* tuples_emitted;
  obs::Counter* tuples_derived;
  obs::Counter* tuples_deduped;
  obs::Counter* exhaustions;
  obs::Counter* parallel_firings;
  obs::Counter* parallel_chunks;
  obs::Counter* plan_replans;
  obs::Counter* plan_cache_hits;
  obs::Counter* plan_cache_misses;
  obs::Histogram* est_error_log2;
  obs::Histogram* delta_tuples;
  obs::Histogram* join_fanout;
  obs::Histogram* parallel_chunk_rows;
  obs::Histogram* parallel_imbalance_pct;
  obs::Gauge* db_bytes;
};

const EvalMetrics& Metrics() {
  static const EvalMetrics* m = new EvalMetrics{
      obs::GetCounter("dire_eval_evaluations_total",
                      "Bottom-up evaluations started"),
      obs::GetCounter("dire_eval_strata_total", "Strata evaluated"),
      obs::GetCounter("dire_eval_rounds_total",
                      "Fixpoint rounds executed (a nonrecursive stratum "
                      "counts one)"),
      obs::GetCounter("dire_eval_rule_firings_total",
                      "Rule plan executions (per round, per delta variant)"),
      obs::GetCounter("dire_eval_tuples_emitted_total",
                      "Head tuples emitted by joins before deduplication"),
      obs::GetCounter("dire_eval_tuples_derived_total",
                      "New tuples inserted into IDB relations"),
      obs::GetCounter("dire_eval_tuples_deduped_total",
                      "Emitted tuples dropped as duplicates"),
      obs::GetCounter("dire_eval_exhaustions_total",
                      "Evaluations stopped early by a resource guard under "
                      "on_exhaustion=partial"),
      obs::GetCounter("dire_eval_parallel_firings_total",
                      "Rule firings whose read phase ran on the worker pool"),
      obs::GetCounter("dire_eval_parallel_chunks_total",
                      "Driving-scan chunks executed by the worker pool"),
      obs::GetCounter("dire_plan_replans_total",
                      "Delta-plan recompilations triggered by statistics "
                      "drift past the replan threshold"),
      obs::GetCounter("dire_plan_cache_hits_total",
                      "Delta-plan compilations avoided by the "
                      "(rule, delta-atom, stats-epoch) plan cache"),
      obs::GetCounter("dire_plan_cache_misses_total",
                      "Delta-plan compilations performed (first compiles "
                      "plus replans)"),
      obs::GetHistogram("dire_plan_est_error_log2",
                        "Per rule firing with a cost-planned estimate: "
                        "|log2((emitted+1)/(estimated+1))|, the planner's "
                        "cardinality estimation error in doublings"),
      obs::GetHistogram("dire_eval_delta_tuples",
                        "Semi-naive frontier size per round (new tuples per "
                        "round for naive evaluation)"),
      obs::GetHistogram("dire_eval_join_fanout",
                        "Tuples emitted per rule firing"),
      obs::GetHistogram("dire_eval_parallel_chunk_rows",
                        "Driving rows per chunk of a parallel firing"),
      obs::GetHistogram("dire_eval_parallel_imbalance_pct",
                        "Per parallel firing: how much longer the slowest "
                        "chunk ran than the mean chunk, in percent"),
      obs::GetGauge("dire_eval_db_approx_bytes",
                    "Approximate relation memory after the last evaluation"),
  };
  return *m;
}

int64_t ElapsedNs(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - since)
      .count();
}

// Chunking policy for parallel firings: split the driving scan into about
// kChunksPerThread chunks per worker (slack for imbalance without barrier
// overhead), but never below kMinChunkRows driving rows per chunk, and run
// serially altogether when the scan is smaller than two minimum chunks.
constexpr size_t kChunksPerThread = 4;
constexpr size_t kMinChunkRows = 64;

}  // namespace

void PrepareIndexes(const CompiledRule& rule,
                    const MutableRelationResolver& resolve) {
  for (const CompiledAtom& atom : rule.body) {
    if (atom.negated || atom.builtin || atom.probe_positions.empty()) {
      continue;
    }
    if (atom.bind_positions.empty()) {
      // Fully bound: the executor answers it with a dedup-table membership
      // probe, never an index (see Descend).
      continue;
    }
    storage::Relation* rel = resolve(atom);
    if (rel == nullptr) continue;
    if (atom.probe_positions.size() == 1) {
      size_t pos = static_cast<size_t>(atom.probe_positions.front());
      if (atom.sorted_probe) {
        rel->EnsureSortedIndex(pos);
      } else {
        rel->EnsureIndex(pos);
      }
    } else {
      rel->EnsureCompositeIndex(atom.probe_positions);
    }
  }
}

void ExecuteRule(const CompiledRule& rule, const RelationResolver& resolve,
                 const TupleSink& sink, const storage::SymbolTable* symbols,
                 const ExecutionGuard* guard) {
  RuleExecutor(rule, resolve, sink, symbols, guard).Run();
}

void ExecuteRuleRange(const CompiledRule& rule,
                      const RelationResolver& resolve, const TupleSink& sink,
                      const storage::SymbolTable* symbols,
                      const ExecutionGuard* guard, size_t begin_row,
                      size_t end_row) {
  RuleExecutor(rule, resolve, sink, symbols, guard, begin_row, end_row)
      .Run();
}

void CountAtomMatches(const CompiledRule& rule,
                      const RelationResolver& resolve,
                      const storage::SymbolTable* symbols,
                      std::vector<uint64_t>* counts, uint64_t* emitted) {
  counts->assign(rule.body.size(), 0);
  uint64_t out = 0;
  RuleExecutor(rule, resolve,
               [&out](storage::RowRef, uint64_t) { ++out; }, symbols,
               /*guard=*/nullptr, /*begin_row=*/0, kNoRange, counts)
      .Run();
  if (emitted != nullptr) *emitted = out;
}

Status EvalOptions::Validate() const {
  if (max_iterations < 0) {
    return Status::InvalidArgument(
        StrFormat("max_iterations must be >= 0, got %d", max_iterations));
  }
  if (!stop_on_fixpoint && max_iterations == 0) {
    return Status::InvalidArgument(
        "stop_on_fixpoint=false requires max_iterations > 0");
  }
  if (checkpoint_every_rounds < 0) {
    return Status::InvalidArgument(
        StrFormat("checkpoint_every_rounds must be >= 0, got %d",
                  checkpoint_every_rounds));
  }
  if (checkpoint_every_rounds > 0 && checkpointer == nullptr) {
    return Status::InvalidArgument(
        "checkpoint_every_rounds requires a checkpointer");
  }
  if (num_threads < 1) {
    return Status::InvalidArgument(
        StrFormat("num_threads must be >= 1, got %d", num_threads));
  }
  if (!(replan_threshold > 1.0)) {
    return Status::InvalidArgument(
        StrFormat("replan_threshold must be > 1, got %g", replan_threshold));
  }
  return Status::Ok();
}

int Evaluator::RegisterRule(const ast::Rule& r) {
  RuleStats rs;
  rs.rule_index = static_cast<int>(stats_.rule_stats.size());
  rs.rule = r.ToString();
  rs.head_predicate = r.head.predicate;
  stats_.rule_stats.push_back(std::move(rs));
  return stats_.rule_stats.back().rule_index;
}

Status Evaluator::MaybeCheckpoint(int stratum_index, int rounds_done,
                                  const DeltaMap* deltas) {
  if (options_.checkpointer == nullptr) return Status::Ok();
  DIRE_FAILPOINT("eval.checkpoint");
  return options_.checkpointer->Checkpoint(stratum_index, rounds_done, deltas);
}

Status Evaluator::GuardCheck(bool* stop) {
  if (options_.guard == nullptr) return Status::Ok();
  options_.guard->SetMemoryUsage(db_->ApproxBytes());
  Status s = options_.guard->Check();
  if (s.ok()) return s;
  if (options_.on_exhaustion == EvalOptions::OnExhaustion::kError) return s;
  if (!stats_.exhausted) Metrics().exhaustions->Add(1);
  *stop = true;
  stats_.converged = false;
  stats_.exhausted = true;
  stats_.exhausted_reason = options_.guard->trip_reason();
  return Status::Ok();
}

Status Evaluator::MergeStaging(const storage::Relation& staging,
                               const std::string& predicate,
                               storage::Relation* head,
                               storage::Relation* delta, int rule_id) {
  const ExecutionGuard* guard = options_.guard;
  head->Reserve(staging.size());
  for (storage::RowRef t : staging.rows()) {
    // Stop before exceeding the tuple budget: the budget trips exactly at
    // its limit, and everything inserted so far is a sound derivation.
    if (guard != nullptr && guard->TuplesExhausted()) break;
    DIRE_FAILPOINT("storage.relation_insert");
    // One hash serves both inserts (head and delta key rows by content).
    uint64_t hash = storage::Relation::HashRow(t);
    if (head->InsertHashed(t, hash)) {
      ++stats_.tuples_derived;
      if (rule_id >= 0) {
        ++stats_.rule_stats[static_cast<size_t>(rule_id)].tuples_inserted;
      }
      Note(predicate, t);
      if (delta != nullptr) delta->InsertHashed(t, hash);
      if (guard != nullptr) guard->AddTuples(1);
    }
  }
  return Status::Ok();
}

ThreadPool* Evaluator::Pool() {
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  }
  return pool_.get();
}

size_t Evaluator::PlanChunks(const CompiledRule& plan,
                             const RelationResolver& resolve) const {
  if (options_.num_threads <= 1 || plan.body.empty()) return 1;
  const CompiledAtom& first = plan.body.front();
  // Only a positive relational first atom gives a partitionable driving
  // scan (negated atoms and builtins run bound, never first in practice).
  if (first.negated || first.builtin) return 1;
  const storage::Relation* driver = resolve(first);
  if (driver == nullptr) return 1;
  size_t rows = driver->size();
  if (rows < 2 * kMinChunkRows) return 1;
  size_t threads = static_cast<size_t>(options_.num_threads);
  size_t target = threads * kChunksPerThread;
  size_t chunk_rows =
      std::max(kMinChunkRows, (rows + target - 1) / target);
  return (rows + chunk_rows - 1) / chunk_rows;
}

Status Evaluator::FireRuleChunked(const CompiledRule& plan, int rule_id,
                                  const RelationResolver& resolve,
                                  storage::Relation* head,
                                  storage::Relation* delta,
                                  size_t num_chunks, size_t* emitted) {
  const storage::Relation* driver = resolve(plan.body.front());
  size_t rows = driver->size();
  size_t chunk_rows = (rows + num_chunks - 1) / num_chunks;
  struct Chunk {
    std::unique_ptr<storage::Relation> staging;
    size_t emitted = 0;
    int64_t ns = 0;
  };
  std::vector<Chunk> chunks(num_chunks);
  for (Chunk& c : chunks) {
    c.staging =
        std::make_unique<storage::Relation>("$staging", head->arity());
  }
  const storage::SymbolTable* symbols = &db_->symbols();
  const ExecutionGuard* guard = options_.guard;

  // Read phase: workers join disjoint row ranges of the driving scan over
  // frozen relation views into per-chunk staging buffers. Nothing in the
  // database mutates until every chunk is done — which is also what makes
  // the head-first duplicate check below safe: `head` is const for the
  // whole phase, so a candidate it already contains can be dropped without
  // staging it at all (it could never survive the merge anyway).
  const storage::Relation* head_c = head;
  Pool()->ParallelFor(num_chunks, [&](size_t ci) {
    obs::Span chunk_span("eval.chunk", "eval");
    chunk_span.Attr("chunk", static_cast<int64_t>(ci));
    auto t0 = std::chrono::steady_clock::now();
    Chunk& c = chunks[ci];
    size_t begin = ci * chunk_rows;
    size_t end = std::min(rows, begin + chunk_rows);
    chunk_span.Attr("rows", static_cast<uint64_t>(end - begin));
    ExecuteRuleRange(plan, resolve,
                     [&c, head_c](storage::RowRef t, uint64_t h) {
                       ++c.emitted;
                       if (head_c->ContainsHashed(t, h)) return;
                       c.staging->InsertHashed(t, h);
                     },
                     symbols, guard, begin, end);
    c.ns = ElapsedNs(t0);
    chunk_span.Attr("emitted", c.emitted);
  });

  // Merge barrier: buffers merge in chunk index order (not completion
  // order), so the accumulated relation receives tuples in exactly the
  // order a serial execution would have inserted them — results are
  // byte-identical to --threads=1, whatever the worker interleaving was.
  const EvalMetrics& m = Metrics();
  m.parallel_firings->Add(1);
  m.parallel_chunks->Add(num_chunks);
  *emitted = 0;
  int64_t max_ns = 0;
  int64_t total_ns = 0;
  Status merged = Status::Ok();
  for (Chunk& c : chunks) {
    *emitted += c.emitted;
    max_ns = std::max(max_ns, c.ns);
    total_ns += c.ns;
    m.parallel_chunk_rows->Observe(c.staging->size());
    if (merged.ok()) {
      merged = MergeStaging(*c.staging, plan.head_predicate, head, delta,
                            rule_id);
    }
  }
  int64_t mean_ns = total_ns / static_cast<int64_t>(num_chunks);
  if (mean_ns > 0) {
    m.parallel_imbalance_pct->Observe(
        static_cast<uint64_t>((max_ns - mean_ns) * 100 / mean_ns));
  }
  return merged;
}

Status Evaluator::FireRule(const CompiledRule& plan, int rule_id,
                           const MutableRelationResolver& resolve,
                           storage::Relation* head,
                           storage::Relation* delta) {
  obs::Span span("eval.rule", "eval");
  span.Attr("head", plan.head_predicate);
  auto t0 = std::chrono::steady_clock::now();
  // Freeze the read set: build every index the plan probes now, so
  // execution — serial or parallel — never mutates a relation.
  PrepareIndexes(plan, resolve);
  RelationResolver frozen =
      [&resolve](const CompiledAtom& atom) -> const storage::Relation* {
    return resolve(atom);
  };
  size_t emitted = 0;
  ++provenance_round_;
  size_t before = stats_.tuples_derived;
  Status merged;
  size_t num_chunks = PlanChunks(plan, frozen);
  if (num_chunks > 1) {
    merged = FireRuleChunked(plan, rule_id, frozen, head, delta, num_chunks,
                             &emitted);
  } else {
    storage::Relation staging("$staging", head->arity());
    // Head-first fast path: `head` is a frozen view for the whole read
    // phase, so a candidate it already contains — the 20:1 duplicate
    // stream of a converging fixpoint — is rejected right here, with the
    // emission-time hash and zero allocations, instead of being staged and
    // discarded at the merge.
    const storage::Relation* head_c = head;
    ExecuteRule(plan, frozen,
                [&staging, &emitted, head_c](storage::RowRef t, uint64_t h) {
                  ++emitted;
                  if (head_c->ContainsHashed(t, h)) return;
                  staging.InsertHashed(t, h);
                },
                &db_->symbols(), options_.guard);
    merged = MergeStaging(staging, plan.head_predicate, head, delta,
                          rule_id);
  }
  ++stats_.rule_firings;
  stats_.tuples_emitted += emitted;
  size_t inserted = stats_.tuples_derived - before;
  int64_t ns = ElapsedNs(t0);
  if (rule_id >= 0) {
    RuleStats& rs = stats_.rule_stats[static_cast<size_t>(rule_id)];
    ++rs.firings;
    rs.tuples_emitted += emitted;
    rs.exec_ns += ns;
  }
  const EvalMetrics& m = Metrics();
  m.rule_firings->Add(1);
  m.tuples_emitted->Add(emitted);
  m.tuples_derived->Add(inserted);
  m.tuples_deduped->Add(emitted - inserted);
  m.join_fanout->Observe(emitted);
  if (plan.est_out_rows >= 0) {
    // Estimation error in doublings: 0 = spot on, k = off by 2^k either way.
    double err = std::abs(std::log2((static_cast<double>(emitted) + 1.0) /
                                    (plan.est_out_rows + 1.0)));
    m.est_error_log2->Observe(static_cast<uint64_t>(err + 0.5));
  }
  span.Attr("emitted", emitted);
  span.Attr("inserted", inserted);
  span.Attr("chunks", static_cast<uint64_t>(num_chunks));
  return merged;
}

Result<EvalStats> Evaluator::Evaluate(const ast::Program& program,
                                      const ResumePoint* resume) {
  DIRE_RETURN_IF_ERROR(options_.Validate());
  // A reused evaluator starts from a clean slate: no iteration counts,
  // rule/stratum breakdowns, or exhausted_reason may survive from a
  // previous evaluation.
  stats_ = EvalStats{};
  obs::Span span("eval.evaluate", "eval");
  Metrics().evaluations->Add(1);
  auto t_eval = std::chrono::steady_clock::now();
  DIRE_RETURN_IF_ERROR(db_->LoadFacts(program));

  // Make sure every head relation exists, so queries over empty results
  // work; register each proper rule for per-rule stats as we go.
  std::vector<IndexedRule> proper_rules;
  for (const ast::Rule& r : program.rules) {
    if (r.IsFact()) continue;
    Result<storage::Relation*> head =
        db_->GetOrCreate(r.head.predicate, r.head.arity());
    if (!head.ok()) return head.status();
    proper_rules.push_back(IndexedRule{&r, RegisterRule(r)});
  }

  ast::DependencyGraph deps(program);
  if (!deps.IsStratified()) {
    return Status::InvalidArgument("program is not stratifiable: " +
                                   deps.StratificationViolation());
  }
  const std::vector<std::vector<std::string>>& strata = deps.Strata();
  span.Attr("rules", proper_rules.size());
  span.Attr("strata", strata.size());
  bool exhausted_stop = false;
  for (size_t si = 0; si < strata.size(); ++si) {
    // A resumed run skips completed strata: their derivations are already in
    // the (recovered) database. Stratum order is a pure function of the
    // program, so indices line up with the checkpointing run.
    if (resume != nullptr && static_cast<int>(si) < resume->stratum_index) {
      continue;
    }
    const std::vector<std::string>& stratum = strata[si];
    std::set<std::string> members(stratum.begin(), stratum.end());
    std::vector<IndexedRule> stratum_rules;
    bool recursive = false;
    for (const IndexedRule& ir : proper_rules) {
      if (members.count(ir.rule->head.predicate) == 0) continue;
      stratum_rules.push_back(ir);
      stats_.rule_stats[static_cast<size_t>(ir.id)].stratum =
          static_cast<int>(si);
      // A stratum needs fixpoint iteration only if some rule reads a
      // predicate defined in the same stratum.
      for (const ast::Atom& a : ir.rule->body) {
        if (members.count(a.predicate) != 0) recursive = true;
      }
    }
    if (stratum_rules.empty()) continue;
    DIRE_FAILPOINT("eval.stratum");
    bool stop = false;
    DIRE_RETURN_IF_ERROR(GuardCheck(&stop));
    if (stop) {  // Completed strata stand; later ones never start.
      exhausted_stop = true;
      DIRE_RETURN_IF_ERROR(
          MaybeCheckpoint(static_cast<int>(si), 0, /*deltas=*/nullptr));
      break;
    }
    const ResumePoint* stratum_resume =
        resume != nullptr && static_cast<int>(si) == resume->stratum_index
            ? resume
            : nullptr;
    DIRE_RETURN_IF_ERROR(EvaluateStratum(stratum_rules, stratum,
                                         static_cast<int>(si), recursive,
                                         stratum_resume));
    if (stats_.exhausted) {
      exhausted_stop = true;
      // The in-flight stratum restarts from its merged state on resume (the
      // guard may have tripped mid-round, where no delta frontier is
      // consistent).
      DIRE_RETURN_IF_ERROR(
          MaybeCheckpoint(static_cast<int>(si), 0, /*deltas=*/nullptr));
      break;
    }
    DIRE_RETURN_IF_ERROR(
        MaybeCheckpoint(static_cast<int>(si) + 1, 0, /*deltas=*/nullptr));
  }
  if (!exhausted_stop) {
    // Final checkpoint: everything is complete; a recovery of this state
    // resumes past the last stratum and re-derives nothing.
    DIRE_RETURN_IF_ERROR(MaybeCheckpoint(static_cast<int>(strata.size()), 0,
                                         /*deltas=*/nullptr));
  }
  Metrics().db_bytes->Set(static_cast<int64_t>(db_->ApproxBytes()));
  span.Attr("iterations", int64_t{stats_.iterations});
  span.Attr("tuples_derived", stats_.tuples_derived);
  if (log::Enabled(log::Level::kDebug)) {
    log::Debug("eval", "evaluation finished",
               {{"iterations", std::to_string(stats_.iterations)},
                {"tuples_derived", std::to_string(stats_.tuples_derived)},
                {"rule_firings", std::to_string(stats_.rule_firings)},
                {"wall_ms", std::to_string(ElapsedNs(t_eval) / 1000000)}});
  }
  return stats_;
}

Result<EvalStats> Evaluator::EvaluateOnce(const std::vector<ast::Rule>& rules) {
  // Same clean-slate contract as Evaluate (see there).
  stats_ = EvalStats{};
  obs::Span span("eval.evaluate_once", "eval");
  Metrics().evaluations->Add(1);
  stats_.iterations = 1;
  Metrics().rounds->Add(1);
  std::vector<IndexedRule> indexed;
  for (const ast::Rule& r : rules) {
    indexed.push_back(IndexedRule{&r, r.IsFact() ? -1 : RegisterRule(r)});
    if (!r.IsFact()) stats_.rule_stats.back().stratum = 0;
  }
  DIRE_RETURN_IF_ERROR(RunRulesOnce(indexed));
  span.Attr("tuples_derived", stats_.tuples_derived);
  return stats_;
}

Status Evaluator::RunRulesOnce(const std::vector<IndexedRule>& rules) {
  // Rules run once, so each compiles against the statistics of the moment
  // (facts loaded so far, plus what earlier rules in this batch derived).
  DatabaseStatsProvider stats_provider(db_);
  for (const IndexedRule& ir : rules) {
    const ast::Rule& r = *ir.rule;
    bool stop = false;
    DIRE_RETURN_IF_ERROR(GuardCheck(&stop));
    if (stop) break;
    if (r.IsFact()) {
      DIRE_RETURN_IF_ERROR(db_->AddFact(r.head));
      continue;
    }
    CompileOptions copts;
    copts.reorder = options_.reorder_atoms;
    copts.planner = options_.planner;
    copts.stats = &stats_provider;
    DIRE_ASSIGN_OR_RETURN(CompiledRule plan,
                          CompileRule(r, &db_->symbols(), copts));
    DIRE_ASSIGN_OR_RETURN(storage::Relation * head,
                          db_->GetOrCreate(plan.head_predicate,
                                           plan.head_arity));
    auto resolve = [this](const CompiledAtom& atom) {
      return db_->Find(atom.predicate);
    };
    DIRE_RETURN_IF_ERROR(
        FireRule(plan, ir.id, resolve, head, /*delta=*/nullptr));
  }
  return Status::Ok();
}

Status Evaluator::EvaluateStratum(const std::vector<IndexedRule>& rules,
                                  const std::vector<std::string>& stratum,
                                  int stratum_index, bool recursive,
                                  const ResumePoint* resume) {
  obs::Span span("eval.stratum", "eval");
  span.Attr("stratum", stratum_index);
  span.Attr("predicates", Join(stratum, ","));
  span.Attr("recursive", recursive ? "true" : "false");
  Metrics().strata->Add(1);
  auto t0 = std::chrono::steady_clock::now();
  size_t tuples_before = stats_.tuples_derived;
  int rounds = 0;
  Status result;
  if (!recursive) {
    ++stats_.iterations;
    Metrics().rounds->Add(1);
    rounds = 1;
    result = RunRulesOnce(rules);
  } else if (options_.mode == EvalOptions::Mode::kNaive) {
    result = NaiveFixpoint(rules, stratum_index, &rounds);
  } else {
    result = SemiNaiveFixpoint(rules, stratum, stratum_index, resume,
                               &rounds);
  }
  DIRE_RETURN_IF_ERROR(result);
  StratumStats ss;
  ss.index = stratum_index;
  ss.predicates = stratum;
  ss.recursive = recursive;
  ss.rounds = rounds;
  ss.tuples_inserted = stats_.tuples_derived - tuples_before;
  ss.wall_ns = ElapsedNs(t0);
  span.Attr("rounds", rounds);
  span.Attr("tuples_inserted", ss.tuples_inserted);
  stats_.stratum_stats.push_back(std::move(ss));
  return Status::Ok();
}

Status Evaluator::NaiveFixpoint(const std::vector<IndexedRule>& rules,
                                int stratum_index, int* rounds) {
  struct Variant {
    CompiledRule plan;
    storage::Relation* head;
    int rule_id;
  };
  // Naive evaluation compiles once against pre-fixpoint statistics and
  // never replans — the re-planning machinery is semi-naive only, where
  // delta plans recompile each epoch anyway.
  DatabaseStatsProvider stats_provider(db_);
  std::vector<Variant> plans;
  for (const IndexedRule& ir : rules) {
    CompileOptions copts;
    copts.reorder = options_.reorder_atoms;
    copts.planner = options_.planner;
    copts.stats = &stats_provider;
    DIRE_ASSIGN_OR_RETURN(CompiledRule plan,
                          CompileRule(*ir.rule, &db_->symbols(), copts));
    DIRE_ASSIGN_OR_RETURN(
        storage::Relation * head,
        db_->GetOrCreate(plan.head_predicate, plan.head_arity));
    plans.push_back(Variant{std::move(plan), head, ir.id});
  }
  auto resolve = [this](const CompiledAtom& atom) {
    return db_->Find(atom.predicate);
  };

  while (true) {
    if (options_.max_iterations > 0 && *rounds >= options_.max_iterations) {
      stats_.converged = !options_.stop_on_fixpoint;
      break;
    }
    bool stop = false;
    DIRE_RETURN_IF_ERROR(GuardCheck(&stop));
    if (stop) break;
    obs::Span round_span("eval.round", "eval");
    round_span.Attr("stratum", stratum_index);
    round_span.Attr("round", *rounds);
    ++*rounds;
    ++stats_.iterations;
    Metrics().rounds->Add(1);
    size_t before = stats_.tuples_derived;
    for (const Variant& v : plans) {
      DIRE_RETURN_IF_ERROR(GuardCheck(&stop));
      if (stop) return Status::Ok();
      DIRE_RETURN_IF_ERROR(
          FireRule(v.plan, v.rule_id, resolve, v.head, /*delta=*/nullptr));
    }
    size_t gained = stats_.tuples_derived - before;
    Metrics().delta_tuples->Observe(gained);
    round_span.Attr("new_tuples", gained);
    if (options_.stop_on_fixpoint && gained == 0) break;
    // Naive evaluation has no delta frontier; a mid-stratum checkpoint
    // restarts the stratum from the merged state on resume.
    if (options_.checkpoint_every_rounds > 0 &&
        *rounds % options_.checkpoint_every_rounds == 0) {
      DIRE_RETURN_IF_ERROR(
          MaybeCheckpoint(stratum_index, 0, /*deltas=*/nullptr));
    }
  }
  return Status::Ok();
}

Status Evaluator::SemiNaiveFixpoint(const std::vector<IndexedRule>& rules,
                                    const std::vector<std::string>& stratum,
                                    int stratum_index,
                                    const ResumePoint* resume, int* rounds) {
  std::set<std::string> members(stratum.begin(), stratum.end());

  // Per-predicate delta relations, double buffered.
  DeltaMap delta;
  DeltaMap next_delta;
  for (const std::string& p : stratum) {
    storage::Relation* full = db_->Find(p);
    if (full == nullptr) continue;  // Stratum member without rules or facts.
    delta[p] = std::make_unique<storage::Relation>(p, full->arity());
    next_delta[p] = std::make_unique<storage::Relation>(p, full->arity());
  }

  // Statistics for the cost planner: full atoms read the database, delta
  // atoms the current frontier buffer of their predicate.
  DatabaseStatsProvider stats_provider(
      db_, [&delta](const std::string& p) -> const storage::Relation* {
        auto it = delta.find(p);
        return it == delta.end() ? nullptr : it->second.get();
      });

  // Plain plans (all-full) run once to seed the deltas; differentiated
  // variants (one stratum-IDB occurrence reads the delta) run each round.
  // Seed plans compile eagerly; delta variants compile lazily per stats
  // epoch (see below), so their plans see the statistics of the rounds
  // they actually run in.
  struct Variant {
    CompiledRule plan;
    storage::Relation* head;
    int rule_id;
  };
  struct DeltaVariant {
    const ast::Rule* rule;
    int rule_id;
    int delta_atom;
    storage::Relation* head;
    CompiledRule plan;
    // Stats epoch `plan` was compiled at; -1 = not yet compiled.
    int planned_epoch = -1;
  };
  std::vector<Variant> seed_plans;
  std::vector<DeltaVariant> delta_variants;
  // Full-source relations whose size drift triggers re-planning (every
  // positive relational predicate some rule body reads). Deltas are
  // excluded: their size scales every candidate order's frontier equally,
  // so drift there never changes the chosen order.
  std::set<std::string> read_predicates;
  for (const IndexedRule& ir : rules) {
    const ast::Rule& r = *ir.rule;
    CompileOptions copts;
    copts.reorder = options_.reorder_atoms;
    copts.planner = options_.planner;
    copts.stats = &stats_provider;
    DIRE_ASSIGN_OR_RETURN(CompiledRule plan,
                          CompileRule(r, &db_->symbols(), copts));
    DIRE_ASSIGN_OR_RETURN(
        storage::Relation * head,
        db_->GetOrCreate(plan.head_predicate, plan.head_arity));
    seed_plans.push_back(Variant{std::move(plan), head, ir.id});
    for (size_t j = 0; j < r.body.size(); ++j) {
      const ast::Atom& a = r.body[j];
      if (!a.negated && !IsBuiltinPredicate(a.predicate)) {
        read_predicates.insert(a.predicate);
      }
      if (a.negated || members.count(a.predicate) == 0) continue;
      DeltaVariant dv;
      dv.rule = &r;
      dv.rule_id = ir.id;
      dv.delta_atom = static_cast<int>(j);
      dv.head = head;
      delta_variants.push_back(std::move(dv));
    }
  }

  // Adaptive re-planning state. The epoch bumps when any read relation's
  // size drifts past options_.replan_threshold versus the snapshot taken
  // at the last bump; delta variants recompile on first use after a bump
  // and are cache hits until the next one. Greedy plans ignore statistics,
  // so under kGreedy the epoch stays 0 and every round after the first is
  // a cache hit — the pre-statistics behavior.
  int stats_epoch = 0;
  std::map<std::string, size_t> planned_sizes;
  auto relation_size = [this](const std::string& p) -> size_t {
    const storage::Relation* r = db_->Find(p);
    return r == nullptr ? 0 : r->size();
  };
  for (const std::string& p : read_predicates) {
    planned_sizes[p] = relation_size(p);
  }
  auto maybe_bump_epoch = [&] {
    if (options_.planner != PlannerMode::kCost) return;
    bool drifted = false;
    for (const std::string& p : read_predicates) {
      size_t now = relation_size(p);
      size_t then = planned_sizes[p];
      size_t hi = std::max(now, then);
      size_t lo = std::max<size_t>(std::min(now, then), 1);
      // Relations this small cannot change a plan enough to matter.
      if (hi < 16) continue;
      if (static_cast<double>(hi) >
          static_cast<double>(lo) * options_.replan_threshold) {
        drifted = true;
        break;
      }
    }
    if (!drifted) return;
    ++stats_epoch;
    for (const std::string& p : read_predicates) {
      planned_sizes[p] = relation_size(p);
    }
  };
  auto ensure_planned = [&](DeltaVariant& v) -> Status {
    if (v.planned_epoch == stats_epoch) {
      ++stats_.plan_cache_hits;
      Metrics().plan_cache_hits->Add(1);
      return Status::Ok();
    }
    CompileOptions dopts;
    dopts.reorder = options_.reorder_atoms;
    dopts.planner = options_.planner;
    dopts.stats = &stats_provider;
    dopts.delta_atom = v.delta_atom;
    DIRE_ASSIGN_OR_RETURN(v.plan,
                          CompileRule(*v.rule, &db_->symbols(), dopts));
    Metrics().plan_cache_misses->Add(1);
    if (v.planned_epoch >= 0) {
      ++stats_.replans;
      Metrics().plan_replans->Add(1);
    }
    v.planned_epoch = stats_epoch;
    return Status::Ok();
  };

  // A delta-bearing checkpoint lets us continue exactly where the crashed
  // run stopped: restore its frontier instead of re-seeding. The frontier's
  // tuples are already merged into the full relations (the checkpoint ran
  // after MergeStaging), so only the delta buffers need refilling.
  const bool resuming_deltas = resume != nullptr && resume->have_deltas;
  if (resuming_deltas) {
    for (const auto& [p, rel] : resume->deltas) {
      auto it = delta.find(p);
      if (it == delta.end()) {
        return Status::InvalidArgument(
            "checkpointed delta for '" + p +
            "' does not name a predicate of the resumed stratum");
      }
      if (rel->arity() != it->second->arity()) {
        return Status::InvalidArgument(StrFormat(
            "checkpointed delta for '%s' has arity %zu, stratum expects %zu",
            p.c_str(), rel->arity(), it->second->arity()));
      }
      for (storage::RowRef t : rel->rows()) it->second->Insert(t);
    }
  }
  // Round counter continuous with the checkpointing run, so "every N rounds"
  // stays on the same cadence across a crash.
  int absolute_round = resume != nullptr ? resume->rounds_done : 0;

  auto resolve_full = [this](const CompiledAtom& atom) {
    return db_->Find(atom.predicate);
  };
  auto resolve_delta = [this, &delta](const CompiledAtom& atom) {
    if (atom.source == AtomSource::kDelta) {
      auto it = delta.find(atom.predicate);
      return it == delta.end() ? nullptr : it->second.get();
    }
    return db_->Find(atom.predicate);
  };

  // Seed round: evaluate every rule on the current database. A resume with a
  // restored frontier skips it — the crashed run already seeded and merged.
  if (!resuming_deltas) {
    obs::Span round_span("eval.round", "eval");
    round_span.Attr("stratum", stratum_index);
    round_span.Attr("round", absolute_round);
    round_span.Attr("seed", "true");
    ++*rounds;
    ++stats_.iterations;
    Metrics().rounds->Add(1);
    ++absolute_round;
    for (const Variant& v : seed_plans) {
      bool stop = false;
      DIRE_RETURN_IF_ERROR(GuardCheck(&stop));
      if (stop) return Status::Ok();
      DIRE_RETURN_IF_ERROR(FireRule(v.plan, v.rule_id, resolve_full, v.head,
                                    delta[v.plan.head_predicate].get()));
    }
    if (options_.checkpoint_every_rounds > 0 &&
        absolute_round % options_.checkpoint_every_rounds == 0) {
      DIRE_RETURN_IF_ERROR(
          MaybeCheckpoint(stratum_index, absolute_round, &delta));
    }
  }

  while (true) {
    if (options_.stop_on_fixpoint) {
      bool any_delta = false;
      for (const auto& [p, rel] : delta) any_delta |= !rel->empty();
      if (!any_delta) break;
    }
    if (options_.max_iterations > 0 && *rounds >= options_.max_iterations) {
      stats_.converged = !options_.stop_on_fixpoint;
      break;
    }
    bool stop = false;
    DIRE_RETURN_IF_ERROR(GuardCheck(&stop));
    if (stop) break;
    obs::Span round_span("eval.round", "eval");
    round_span.Attr("stratum", stratum_index);
    round_span.Attr("round", absolute_round);
    ++*rounds;
    ++stats_.iterations;
    Metrics().rounds->Add(1);
    ++absolute_round;
    // Round boundary: re-plan if the full relations drifted past the
    // threshold since the plans' statistics were taken.
    maybe_bump_epoch();
    for (DeltaVariant& v : delta_variants) {
      DIRE_RETURN_IF_ERROR(GuardCheck(&stop));
      if (stop) return Status::Ok();
      DIRE_RETURN_IF_ERROR(ensure_planned(v));
      DIRE_RETURN_IF_ERROR(FireRule(v.plan, v.rule_id, resolve_delta, v.head,
                                    next_delta[v.plan.head_predicate].get()));
    }
    for (auto& [p, rel] : delta) {
      rel->Clear();
      std::swap(delta[p], next_delta[p]);
    }
    size_t frontier = 0;
    for (const auto& [p, rel] : delta) frontier += rel->size();
    Metrics().delta_tuples->Observe(frontier);
    round_span.Attr("frontier", frontier);
    // Clean round boundary: full relations hold every derivation through
    // `absolute_round` and `delta` is exactly the frontier for the next one,
    // so this pair is a consistent mid-stratum checkpoint.
    if (options_.checkpoint_every_rounds > 0 &&
        absolute_round % options_.checkpoint_every_rounds == 0) {
      DIRE_RETURN_IF_ERROR(
          MaybeCheckpoint(stratum_index, absolute_round, &delta));
    }
  }
  return Status::Ok();
}

}  // namespace dire::eval
