#ifndef DIRE_EVAL_MAINTAIN_H_
#define DIRE_EVAL_MAINTAIN_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "ast/ast.h"
#include "ast/dependency.h"
#include "base/guard.h"
#include "base/result.h"
#include "eval/plan.h"
#include "storage/database.h"

namespace dire::eval {

// One base-fact mutation, by constant spelling — the shared currency of the
// WAL, the server write protocol, and the CLI.
struct FactDelta {
  std::string predicate;
  std::vector<std::string> values;
};

// What one ApplyDelta call did, for logs, STATS fields, and benchmarks.
struct MaintainStats {
  // Strata whose derived state the delta actually reached.
  int strata_touched = 0;
  // Counting passes (non-recursive strata) and DRed passes (recursive).
  int counting_passes = 0;
  int dred_passes = 0;
  // Lazy derivation-count initializations performed by this call.
  int count_inits = 0;
  // Rewritten rule variants compiled and executed.
  size_t variants_executed = 0;
  // Semi-naive rounds across all DRed fixpoints (overestimate + insert).
  size_t rounds = 0;
  // Net derived-tuple changes applied to the database.
  size_t tuples_inserted = 0;
  size_t tuples_deleted = 0;
  // DRed bookkeeping: tuples provisionally deleted by the overestimate
  // phase, and the subset the rederivation phase rescued.
  size_t overdeleted = 0;
  size_t tuples_rederived = 0;
};

// Incremental view maintenance over a database at fixpoint: counting-based
// maintenance (Gupta–Mumick–Subrahmanian) for non-recursive strata and
// DRed (delete-and-rederive) for recursive ones, built from the same
// compiled rule plans, cost planner, and executor the evaluator uses.
// Rewritten rule variants read per-predicate delta relations under
// reserved "$ivm:" names ('$' cannot appear in a parsed predicate, the
// same trick the checkpoint's "$delta:" sections use).
//
// Contract: the database must be at the fixpoint of the program over the
// OLD base facts in its derived relations, while its base (EDB) relations
// already hold the NEW state — exactly what a durable write leaves behind
// (storage::DataDir applies the base mutation, derived consequences
// pending). ApplyDelta then edits the derived relations in place to the
// new fixpoint. Derivation counts live only in memory
// (storage::Relation::EnableCounts) and never serialize, so snapshots of a
// maintained database stay byte-identical to a from-scratch re-evaluation.
//
// Failure contract: if ApplyDelta returns a non-OK status after it started
// mutating (guard trip, inconsistent counts, internal error), the
// maintainer marks itself dirty and refuses further deltas; the derived
// state may then be mid-maintenance and the caller must rebuild it (drop
// derived relations + full re-evaluation) and call Reset(). The server
// does exactly that as its fallback path.
//
// Not thread-safe; the caller serializes ApplyDelta against every reader
// and writer of the database (the server holds its exclusive db lock).
class Maintainer {
 public:
  struct Options {
    // Join-order policy for the rewritten variants (see PlannerMode).
    PlannerMode planner = PlannerMode::kCost;
    // Safety cap on fixpoint rounds within one DRed phase; 0 = unlimited
    // (maintenance terminates regardless — the domain is finite — but a
    // cap turns a surprise blowup into a clean dirty-fallback).
    int max_rounds = 0;
  };

  // `program` is copied. `db` is not owned and must outlive the maintainer.
  Maintainer(storage::Database* db, const ast::Program& program);
  Maintainer(storage::Database* db, const ast::Program& program,
             Options options);

  // Ok iff the program can be maintained incrementally (it stratifies).
  // When not ok, ApplyDelta always fails with this status.
  const Status& init_status() const { return init_status_; }

  // True when ApplyDelta can be used right now.
  bool usable() const { return init_status_.ok() && !dirty_; }
  bool dirty() const { return dirty_; }

  // Forgets all incremental state: the dirty flag and which strata have
  // initialized derivation counts (they re-prime lazily on the next
  // ApplyDelta). Call after externally rebuilding the derived state.
  void Reset();

  // Applies one batch of base-fact changes to the derived relations.
  // `inserts` are tuples that were absent before and are present in the
  // EDB now; `deletes` were present before and are absent now (both are
  // validated against the database and rejected otherwise — pass net
  // effects, not raw operation logs). Deltas may only target base
  // predicates; rule heads are refused. When `guard` is set, variant
  // executions poll it; a trip aborts maintenance with the trip status
  // (and the dirty flag, per the failure contract above).
  Result<MaintainStats> ApplyDelta(const std::vector<FactDelta>& inserts,
                                   const std::vector<FactDelta>& deletes,
                                   const ExecutionGuard* guard = nullptr);

  // Predicates derived by rules (deltas on them are refused).
  const std::set<std::string>& derived() const { return derived_; }

  // Number of strata of the program (the stratum index a completed
  // checkpoint records; see eval/checkpoint.h).
  int num_strata() const { return static_cast<int>(strata_.size()); }

 private:
  struct Stratum {
    std::set<std::string> members;
    bool recursive = false;
    std::vector<const ast::Rule*> rules;  // Rules whose head is a member.
  };
  // Per-predicate delta relations visible to higher strata: tuples that
  // net-appeared / net-disappeared (either may be null when empty).
  struct Change {
    storage::Relation* ins = nullptr;
    storage::Relation* del = nullptr;
  };
  using ChangeMap = std::map<std::string, Change>;
  // One rewritten rule: body atoms renamed onto "$ivm:" delta relations,
  // with the signed multiplicity its results contribute and the body index
  // that must lead the join (-1 for none).
  struct Variant {
    ast::Rule rule;
    int sign = 1;
    int delta_idx = -1;
  };
  using Sink = std::function<void(storage::RowRef, uint64_t)>;

  Result<MaintainStats> ApplyDeltaImpl(const std::vector<FactDelta>& inserts,
                                       const std::vector<FactDelta>& deletes,
                                       const ExecutionGuard* guard);
  // Validates and interns one side of the delta batch into "$ivm:i:" /
  // "$ivm:d:" scratch relations.
  Status IngestBaseDeltas(const std::vector<FactDelta>& deltas, bool insert,
                          ChangeMap* changed);
  Status CountingStratum(int index, const Stratum& s, ChangeMap* changed,
                         const ExecutionGuard* guard, MaintainStats* st);
  // Lazily (re)computes per-tuple derivation counts for the stratum's head
  // by running old-state rule variants with multiplicity.
  Status EnsureStratumCounts(int index, const Stratum& s,
                             const ChangeMap& changed,
                             const ExecutionGuard* guard, MaintainStats* st);
  Status DredStratum(const Stratum& s, ChangeMap* changed,
                     const ExecutionGuard* guard, MaintainStats* st);

  // Compiles and executes one variant. With `multiplicity`, per-atom
  // projection dedup is disabled so the sink sees every satisfying body
  // binding (derivation counting needs multiplicities, not sets).
  Status RunVariant(const Variant& v, bool multiplicity,
                    const ExecutionGuard* guard, const Sink& sink,
                    MaintainStats* st);

  // Scratch relation registry; names shadow database relations inside
  // variant execution.
  storage::Relation* EnsureScratch(const std::string& name, size_t arity,
                                   bool counts = false);
  // Replaces any existing scratch relation of that name with an empty one.
  storage::Relation* FreshScratch(const std::string& name, size_t arity);
  storage::Relation* FindScratch(const std::string& name) const;

  // Variant builders (pure; see maintain.cc for the algebra each encodes).
  static std::vector<Variant> OldStateVariants(const ast::Rule& r,
                                               const ChangeMap& changed);
  static std::vector<Variant> CountingVariants(const ast::Rule& r,
                                               const ChangeMap& changed);
  static std::vector<Variant> DeleteSeedVariants(
      const ast::Rule& r, const ChangeMap& changed,
      const std::set<std::string>& members);
  static std::vector<Variant> OverPropagateVariants(
      const ast::Rule& r, const ChangeMap& changed,
      const std::set<std::string>& members);
  static std::vector<Variant> InsertSeedVariants(
      const ast::Rule& r, const ChangeMap& changed,
      const std::set<std::string>& members);
  static std::vector<Variant> InsertPropagateVariants(
      const ast::Rule& r, const std::set<std::string>& members);
  static Variant RederiveVariant(const ast::Rule& r);

  storage::Database* db_;  // Not owned.
  ast::Program program_;
  Options options_;
  Status init_status_;
  bool dirty_ = false;
  std::vector<Stratum> strata_;
  std::set<std::string> derived_;
  // Arity of every predicate mentioned by the program.
  std::map<std::string, size_t> arity_;
  // Base-fact tuples of predicates that also have rules: these tuples hold
  // a permanent derivation and are never deleted by maintenance.
  std::map<std::string, std::unique_ptr<storage::Relation>> fact_rels_;
  // Strata whose derivation counts are initialized (counting strata only).
  std::set<int> counted_;
  std::map<std::string, std::unique_ptr<storage::Relation>> scratch_;
};

}  // namespace dire::eval

#endif  // DIRE_EVAL_MAINTAIN_H_
