#include "eval/cost.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "eval/builtins.h"

namespace dire::eval {

bool DatabaseStatsProvider::Lookup(const std::string& predicate,
                                   AtomSource source,
                                   RelationEstimate* out) const {
  const storage::Relation* rel = nullptr;
  if (source == AtomSource::kDelta && delta_lookup_ != nullptr) {
    rel = delta_lookup_(predicate);
  } else {
    rel = db_->Find(predicate);
  }
  if (rel == nullptr) return false;
  out->rows = static_cast<double>(rel->size());
  out->distinct.clear();
  out->distinct.reserve(rel->arity());
  for (size_t col = 0; col < rel->arity(); ++col) {
    out->distinct.push_back(std::max<double>(
        1.0, static_cast<double>(rel->DistinctEstimate(col))));
  }
  return true;
}

namespace {

// Estimated rows of `atom`'s relation matching one binding of the
// already-bound variables: rows times 1/distinct(c) per bound column
// (constants, variables bound by earlier atoms, and repeats within this
// atom). Returns {scan_rows, matches}.
struct AtomEstimate {
  double scan_rows = 0;
  double matches = 0;
};

AtomEstimate EstimateAtom(const ast::Atom& atom,
                          const std::set<std::string>& bound,
                          const StatsProvider& stats, AtomSource source) {
  AtomEstimate out;
  RelationEstimate est;
  if (!stats.Lookup(atom.predicate, source, &est)) {
    // No relation: execution yields no rows; the cheapest possible atom.
    return out;
  }
  out.scan_rows = est.rows;
  double matches = est.rows;
  std::set<std::string> bound_here;
  for (size_t pos = 0; pos < atom.args.size(); ++pos) {
    const ast::Term& t = atom.args[pos];
    bool is_bound = t.IsConstant() || bound.count(t.text()) != 0 ||
                    bound_here.count(t.text()) != 0;
    if (is_bound && pos < est.distinct.size()) {
      matches /= est.distinct[pos];
    }
    if (t.IsVariable()) bound_here.insert(t.text());
  }
  out.matches = matches;
  return out;
}

}  // namespace

JoinOrder ChooseJoinOrder(const ast::Rule& rule, const StatsProvider& stats,
                          int delta_atom) {
  JoinOrder out;
  auto is_filter = [](const ast::Atom& a) {
    return a.negated || IsBuiltinPredicate(a.predicate);
  };
  std::vector<bool> used(rule.body.size(), false);
  std::set<std::string> bound;
  double frontier = 1.0;

  auto take = [&](size_t i) {
    AtomSource source = static_cast<int>(i) == delta_atom
                            ? AtomSource::kDelta
                            : AtomSource::kFull;
    AtomEstimate est = EstimateAtom(rule.body[i], bound, stats, source);
    frontier *= est.matches;
    out.steps.push_back(OrderStep{i, est.scan_rows, frontier});
    used[i] = true;
    for (const ast::Term& t : rule.body[i].args) {
      if (t.IsVariable()) bound.insert(t.text());
    }
  };

  size_t num_positive = 0;
  for (const ast::Atom& a : rule.body) num_positive += is_filter(a) ? 0 : 1;
  // The delta atom leads unconditionally: semi-naive differentiation needs
  // it to read the frontier, and the parallel executor partitions the
  // driving scan at body[0].
  if (delta_atom >= 0) take(static_cast<size_t>(delta_atom));

  while (out.steps.size() < num_positive) {
    int best = -1;
    double best_matches = 0;
    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (used[i] || is_filter(rule.body[i])) continue;
      AtomSource source = static_cast<int>(i) == delta_atom
                              ? AtomSource::kDelta
                              : AtomSource::kFull;
      double matches =
          EstimateAtom(rule.body[i], bound, stats, source).matches;
      // Strict < keeps the first (lowest body index) atom on a tie, so the
      // chosen order is a deterministic function of the statistics.
      if (best < 0 || matches < best_matches) {
        best_matches = matches;
        best = static_cast<int>(i);
      }
    }
    take(static_cast<size_t>(best));
  }
  out.est_out_rows = frontier;
  return out;
}

bool PreferSortedProbe(double rows, double est_probes) {
  if (rows < 0 || est_probes < 0) return false;
  // Unit = one hash-probe's worth of work. Building a hash index allocates
  // a map node and bucket vector per distinct value (heavy per row);
  // building a sorted run is one comparison sort over row ids. Probing
  // hash is O(1); probing sorted runs is a binary search.
  constexpr double kHashBuildPerRow = 6.0;
  constexpr double kHashProbe = 1.5;
  constexpr double kSortBuildPerRowLog = 1.0;
  constexpr double kSortedProbePerLog = 0.5;
  double log_rows = std::log2(rows + 2.0);
  double hash_cost = kHashBuildPerRow * rows + kHashProbe * est_probes;
  double sorted_cost = kSortBuildPerRowLog * rows * log_rows +
                       kSortedProbePerLog * log_rows * est_probes;
  return sorted_cost < hash_cost;
}

}  // namespace dire::eval
