#include "eval/plan.h"

#include <map>
#include <set>

#include "base/string_util.h"
#include "eval/builtins.h"
#include "eval/cost.h"

namespace dire::eval {
namespace {

// Number of argument positions of `atom` whose variable is in `bound` or is
// a constant — the join selectivity proxy used by the greedy ordering.
int BoundCount(const ast::Atom& atom, const std::set<std::string>& bound) {
  int n = 0;
  for (const ast::Term& t : atom.args) {
    if (t.IsConstant() || bound.count(t.text()) != 0) ++n;
  }
  return n;
}

}  // namespace

Result<CompiledRule> CompileRule(const ast::Rule& rule,
                                 storage::SymbolTable* symbols,
                                 const CompileOptions& options) {
  if (rule.IsFact()) {
    return Status::InvalidArgument("cannot compile a fact as a rule: " +
                                   rule.ToString());
  }
  if (options.delta_atom >= static_cast<int>(rule.body.size())) {
    return Status::InvalidArgument("delta_atom out of range");
  }

  if (IsBuiltinPredicate(rule.head.predicate)) {
    return Status::InvalidArgument("builtin predicate '" +
                                   rule.head.predicate +
                                   "' cannot be defined by rules");
  }
  for (const ast::Atom& a : rule.body) {
    if (IsBuiltinPredicate(a.predicate) && (a.arity() != 2 || a.negated)) {
      return Status::InvalidArgument(
          "builtin '" + a.predicate +
          "' takes exactly two positive arguments: " + a.ToString());
    }
  }

  // Choose the join order over the positive relational atoms; negated atoms
  // and builtins run last (they only filter, never bind, and need every
  // variable bound).
  auto is_filter = [](const ast::Atom& a) {
    return a.negated || IsBuiltinPredicate(a.predicate);
  };
  size_t num_positive = 0;
  for (const ast::Atom& a : rule.body) num_positive += is_filter(a) ? 0 : 1;
  if (options.delta_atom >= 0 &&
      is_filter(rule.body[static_cast<size_t>(options.delta_atom)])) {
    return Status::InvalidArgument(
        "delta differentiation applies to positive atoms only");
  }

  std::vector<size_t> order;
  std::vector<bool> used(rule.body.size(), false);
  std::set<std::string> bound_vars;
  auto take = [&](size_t i) {
    order.push_back(i);
    used[i] = true;
    for (const ast::Term& t : rule.body[i].args) {
      if (t.IsVariable()) bound_vars.insert(t.text());
    }
  };
  // Per-body-index planner estimates, copied into the compiled atoms below
  // (kCost with statistics only; -1 marks "no estimate").
  std::vector<double> est_scan(rule.body.size(), -1);
  std::vector<double> est_out(rule.body.size(), -1);
  double est_out_rows = -1;
  const bool cost_planner = options.reorder &&
                            options.planner == PlannerMode::kCost &&
                            options.stats != nullptr;
  if (cost_planner) {
    JoinOrder chosen =
        ChooseJoinOrder(rule, *options.stats, options.delta_atom);
    for (const OrderStep& step : chosen.steps) {
      est_scan[step.body_index] = step.scan_rows;
      est_out[step.body_index] = step.out_rows;
      take(step.body_index);
    }
    est_out_rows = chosen.est_out_rows;
  } else {
    if (options.delta_atom >= 0) {
      take(static_cast<size_t>(options.delta_atom));
    }
    if (!options.reorder) {
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (!used[i] && !is_filter(rule.body[i])) take(i);
      }
    } else {
      while (order.size() < num_positive) {
        int best = -1;
        int best_score = -1;
        for (size_t i = 0; i < rule.body.size(); ++i) {
          if (used[i] || is_filter(rule.body[i])) continue;
          int score = BoundCount(rule.body[i], bound_vars);
          if (score > best_score) {
            best_score = score;
            best = static_cast<int>(i);
          }
        }
        take(static_cast<size_t>(best));
      }
    }
  }
  for (size_t i = 0; i < rule.body.size(); ++i) {
    if (is_filter(rule.body[i])) {
      for (const ast::Term& t : rule.body[i].args) {
        if (t.IsVariable() && bound_vars.count(t.text()) == 0) {
          return Status::InvalidArgument(
              StrFormat("unsafe %s: variable '%s' in %s is not bound by a "
                        "positive atom",
                        rule.body[i].negated ? "negation" : "builtin",
                        t.text().c_str(),
                        rule.body[i].ToString().c_str()));
        }
      }
      order.push_back(i);
    }
  }

  CompiledRule out;
  out.head_predicate = rule.head.predicate;
  out.head_arity = rule.head.arity();
  out.est_out_rows = est_out_rows;

  std::map<std::string, int> slot_of;
  auto slot_for = [&](const std::string& var) {
    auto [it, inserted] = slot_of.emplace(var, out.num_slots);
    if (inserted) {
      ++out.num_slots;
      out.slot_names.push_back(var);
    }
    return it->second;
  };

  std::set<std::string> bound_so_far;
  // Estimated probes an atom receives per firing = the cumulative frontier
  // after the previous atom (1 for the first: one unconditional scan).
  double est_probes = 1.0;
  for (size_t body_index : order) {
    const ast::Atom& atom = rule.body[body_index];
    CompiledAtom ca;
    ca.predicate = atom.predicate;
    ca.negated = atom.negated;
    ca.builtin = IsBuiltinPredicate(atom.predicate);
    ca.est_scan_rows = est_scan[body_index];
    ca.est_rows = est_out[body_index];
    if (options.delta_atom >= 0 &&
        body_index == static_cast<size_t>(options.delta_atom)) {
      ca.source = AtomSource::kDelta;
    }
    std::set<std::string> bound_in_atom;
    for (size_t pos = 0; pos < atom.args.size(); ++pos) {
      const ast::Term& t = atom.args[pos];
      ArgRef ref;
      if (t.IsConstant()) {
        ref.is_const = true;
        ref.value = symbols->Intern(t.text());
        ca.check_positions.push_back(static_cast<int>(pos));
      } else {
        ref.slot = slot_for(t.text());
        bool already_bound = bound_so_far.count(t.text()) != 0 ||
                             bound_in_atom.count(t.text()) != 0;
        if (already_bound) {
          ca.check_positions.push_back(static_cast<int>(pos));
        } else {
          ca.bind_positions.push_back(static_cast<int>(pos));
          bound_in_atom.insert(t.text());
        }
      }
      ca.args.push_back(ref);
    }
    // Probe on every position whose value is known before the atom runs;
    // repeats within this atom are only checkable against slots bound by
    // this atom's own earlier positions, so restrict the probe set to
    // constants/earlier-atom variables. One bound position uses a
    // single-column index, several use a composite index over all of them.
    // Negated atoms use a direct membership lookup instead of a probe;
    // builtins evaluate directly.
    if (!ca.negated && !ca.builtin) {
      for (int pos : ca.check_positions) {
        const ArgRef& ref = ca.args[static_cast<size_t>(pos)];
        if (ref.is_const ||
            bound_so_far.count(atom.args[static_cast<size_t>(pos)].text()) !=
                0) {
          ca.probe_positions.push_back(pos);
        }
      }
      if (!ca.probe_positions.empty()) {
        ca.probe_position = ca.probe_positions.front();
      }
      // Index-kind choice (kCost with statistics only — without estimates
      // the probe stays on the hash index, the statistics-free default).
      // Result-identical either way; see CompiledAtom::sorted_probe.
      if (cost_planner && ca.probe_positions.size() == 1 &&
          ca.est_scan_rows >= 0 && est_probes >= 0 &&
          PreferSortedProbe(ca.est_scan_rows, est_probes)) {
        ca.sorted_probe = true;
      }
    }
    est_probes = est_out[body_index];
    for (const std::string& v : bound_in_atom) bound_so_far.insert(v);
    out.body.push_back(std::move(ca));
  }

  // Liveness pass (reverse): a binding is live if its slot is read by any
  // later atom or by the head.
  {
    std::set<int> read_later;
    for (const ast::Term& t : rule.head.args) {
      if (t.IsVariable()) {
        auto it = slot_of.find(t.text());
        if (it != slot_of.end()) read_later.insert(it->second);
      }
    }
    for (size_t i = out.body.size(); i-- > 0;) {
      CompiledAtom& ca = out.body[i];
      for (int pos : ca.bind_positions) {
        int slot = ca.args[static_cast<size_t>(pos)].slot;
        if (read_later.count(slot) != 0) {
          ca.live_bind_positions.push_back(pos);
        }
      }
      for (const ArgRef& ref : ca.args) {
        if (!ref.is_const) read_later.insert(ref.slot);
      }
    }
  }

  for (const ast::Term& t : rule.head.args) {
    ArgRef ref;
    if (t.IsConstant()) {
      ref.is_const = true;
      ref.value = symbols->Intern(t.text());
    } else {
      auto it = slot_of.find(t.text());
      if (it == slot_of.end()) {
        return Status::InvalidArgument(
            StrFormat("unsafe rule: head variable '%s' not bound by the "
                      "body in %s",
                      t.text().c_str(), rule.ToString().c_str()));
      }
      ref.slot = it->second;
    }
    out.head_args.push_back(ref);
  }
  return out;
}

std::vector<IndexRequirement> RequiredIndexes(const CompiledRule& rule) {
  std::vector<IndexRequirement> out;
  for (const CompiledAtom& atom : rule.body) {
    if (atom.negated || atom.builtin || atom.probe_positions.empty()) {
      continue;
    }
    IndexRequirement req{atom.predicate, atom.source, atom.probe_positions,
                         atom.sorted_probe};
    bool duplicate = false;
    for (const IndexRequirement& have : out) duplicate |= have == req;
    if (!duplicate) out.push_back(std::move(req));
  }
  return out;
}

}  // namespace dire::eval
