#ifndef DIRE_EVAL_BUILTINS_H_
#define DIRE_EVAL_BUILTINS_H_

#include <string>

#include "storage/value.h"

namespace dire::eval {

// Comparison builtins usable in rule bodies:
//
//   sibling(X, Y) :- parent(P, X), parent(P, Y), neq(X, Y).
//
//   neq(X, Y)   X != Y
//   lt(X, Y)    X <  Y
//   leq(X, Y)   X <= Y
//
// Both arguments must be bound by positive atoms (checked at compile time,
// like negation). Values that both parse as decimal integers compare
// numerically; otherwise the comparison is lexicographic on the constant
// spelling. Builtin predicates are reserved: programs may not define rules
// or facts for them.

// True if `name` is a reserved builtin predicate (arity 2).
bool IsBuiltinPredicate(const std::string& name);

// Evaluates the builtin. Requires IsBuiltinPredicate(name).
bool EvalBuiltin(const std::string& name, const storage::SymbolTable& symbols,
                 storage::ValueId a, storage::ValueId b);

}  // namespace dire::eval

#endif  // DIRE_EVAL_BUILTINS_H_
