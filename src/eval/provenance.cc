#include "eval/provenance.h"

#include <map>
#include <set>

#include "base/string_util.h"
#include "eval/builtins.h"

namespace dire::eval {
namespace {

// Backtracking search for one rule-body instantiation deriving `fact_tuple`
// with every positive premise strictly older than `fact_round`.
class BodySearch {
 public:
  BodySearch(storage::Database* db, const ProvenanceTracker& tracker,
             int fact_round)
      : db_(db), tracker_(tracker), fact_round_(fact_round) {}

  // On success fills `premises` with (atom ground instance) per body atom.
  bool Run(const ast::Rule& rule,
           const std::map<std::string, storage::ValueId>& head_binding,
           std::vector<ast::Atom>* premises) {
    rule_ = &rule;
    binding_ = head_binding;
    premises->clear();
    if (!Extend(0)) return false;
    // Materialize the ground premises from the final binding.
    for (const ast::Atom& atom : rule.body) {
      ast::Atom ground;
      ground.predicate = atom.predicate;
      ground.negated = atom.negated;
      for (const ast::Term& t : atom.args) {
        ground.args.push_back(ast::Term::Const(
            db_->symbols().Name(ValueOf(t))));
      }
      premises->push_back(std::move(ground));
    }
    return true;
  }

 private:
  storage::ValueId ValueOf(const ast::Term& t) const {
    if (t.IsConstant()) {
      return db_->symbols().Intern(t.text());
    }
    return binding_.at(t.text());
  }

  bool Extend(size_t index) {
    if (index == rule_->body.size()) return true;
    const ast::Atom& atom = rule_->body[index];
    if (IsBuiltinPredicate(atom.predicate)) {
      return CheckBuiltin(atom) && Extend(index + 1);
    }
    if (atom.negated) {
      // Defer all negated atoms to the end (they are checks).
      return CheckNegated(atom) && Extend(index + 1);
    }
    storage::Relation* rel = db_->Find(atom.predicate);
    if (rel == nullptr) return false;
    for (storage::RowRef t : rel->rows()) {
      if (tracker_.RoundOf(atom.predicate, t) >= fact_round_) continue;
      std::vector<std::string> trail;
      if (TryBind(atom, t, &trail)) {
        if (Extend(index + 1)) return true;
      }
      for (const std::string& v : trail) binding_.erase(v);
    }
    return false;
  }

  bool CheckBuiltin(const ast::Atom& atom) {
    if (atom.arity() != 2) return false;
    storage::ValueId values[2];
    for (int i = 0; i < 2; ++i) {
      const ast::Term& t = atom.args[static_cast<size_t>(i)];
      if (t.IsConstant()) {
        values[i] = db_->symbols().Intern(t.text());
      } else {
        auto it = binding_.find(t.text());
        if (it == binding_.end()) return false;
        values[i] = it->second;
      }
    }
    return EvalBuiltin(atom.predicate, db_->symbols(), values[0], values[1]);
  }

  bool CheckNegated(const ast::Atom& atom) {
    storage::Relation* rel = db_->Find(atom.predicate);
    if (rel == nullptr) return true;
    storage::Tuple key;
    for (const ast::Term& t : atom.args) {
      if (t.IsConstant()) {
        storage::ValueId id = db_->symbols().Find(t.text());
        if (id == storage::SymbolTable::kMissing) return true;
        key.push_back(id);
      } else {
        auto it = binding_.find(t.text());
        if (it == binding_.end()) return false;  // Unsafe; treat as failure.
        key.push_back(it->second);
      }
    }
    return !rel->Contains(key);
  }

  bool TryBind(const ast::Atom& atom, storage::RowRef t,
               std::vector<std::string>* trail) {
    for (size_t i = 0; i < atom.args.size(); ++i) {
      const ast::Term& term = atom.args[i];
      if (term.IsConstant()) {
        storage::ValueId id = db_->symbols().Find(term.text());
        if (id != t[i]) return false;
        continue;
      }
      auto it = binding_.find(term.text());
      if (it != binding_.end()) {
        if (it->second != t[i]) return false;
      } else {
        binding_.emplace(term.text(), t[i]);
        trail->push_back(term.text());
      }
    }
    return true;
  }

  storage::Database* db_;
  const ProvenanceTracker& tracker_;
  int fact_round_;
  const ast::Rule* rule_ = nullptr;
  std::map<std::string, storage::ValueId> binding_;
};

class Explainer {
 public:
  Explainer(storage::Database* db, const ast::Program& program,
            const ProvenanceTracker& tracker, const ExplainOptions& options)
      : db_(db), program_(program), tracker_(tracker), options_(options) {
    for (const ast::Rule& r : program.rules) {
      if (!r.IsFact()) idb_.insert(r.head.predicate);
    }
  }

  Result<Derivation> Build(const ast::Atom& fact, int depth) {
    if (depth > options_.max_depth) {
      return Status::Internal("derivation depth limit exceeded");
    }
    storage::Tuple tuple;
    for (const ast::Term& t : fact.args) {
      if (t.IsVariable()) {
        return Status::InvalidArgument("fact must be ground: " +
                                       fact.ToString());
      }
      storage::ValueId id = db_->symbols().Find(t.text());
      if (id == storage::SymbolTable::kMissing) {
        return Status::NotFound("unknown constant in " + fact.ToString());
      }
      tuple.push_back(id);
    }
    storage::Relation* rel = db_->Find(fact.predicate);
    if (rel == nullptr || !rel->Contains(tuple)) {
      return Status::NotFound(fact.ToString() + " is not in the database");
    }

    Derivation node;
    node.fact = fact;
    node.fact.negated = false;

    if (idb_.count(fact.predicate) == 0) {
      return node;  // EDB leaf.
    }
    int round = tracker_.RoundOf(fact.predicate, tuple);
    if (round == 0) {
      return Status::InvalidArgument(
          "no recorded derivation round for " + fact.ToString() +
          "; was the ProvenanceTracker attached during evaluation?");
    }

    for (size_t rule_index = 0; rule_index < program_.rules.size();
         ++rule_index) {
      const ast::Rule& rule = program_.rules[rule_index];
      if (rule.IsFact() || rule.head.predicate != fact.predicate) continue;
      // Bind head variables against the fact (head terms may repeat).
      std::map<std::string, storage::ValueId> head_binding;
      bool head_ok = rule.head.arity() == tuple.size();
      for (size_t i = 0; head_ok && i < tuple.size(); ++i) {
        const ast::Term& t = rule.head.args[i];
        if (t.IsConstant()) {
          head_ok = db_->symbols().Find(t.text()) == tuple[i];
        } else {
          auto [it, inserted] = head_binding.emplace(t.text(), tuple[i]);
          head_ok = inserted || it->second == tuple[i];
        }
      }
      if (!head_ok) continue;

      BodySearch search(db_, tracker_, round);
      std::vector<ast::Atom> premises;
      if (!search.Run(rule, head_binding, &premises)) continue;

      node.rule_index = static_cast<int>(rule_index);
      bool all_ok = true;
      for (const ast::Atom& premise : premises) {
        if (IsBuiltinPredicate(premise.predicate)) {
          Derivation leaf;
          leaf.fact = premise;
          leaf.rule_index = -2;  // Rendered as [builtin].
          node.premises.push_back(std::move(leaf));
          continue;
        }
        if (premise.negated) {
          Derivation leaf;
          leaf.fact = premise;
          node.premises.push_back(std::move(leaf));
          continue;
        }
        Result<Derivation> child = Build(premise, depth + 1);
        if (!child.ok()) {
          all_ok = false;
          break;
        }
        node.premises.push_back(std::move(child).value());
      }
      if (all_ok) return node;
      node.premises.clear();
    }
    return Status::NotFound("no well-founded rule instance derives " +
                            fact.ToString());
  }

 private:
  storage::Database* db_;
  const ast::Program& program_;
  const ProvenanceTracker& tracker_;
  ExplainOptions options_;
  std::set<std::string> idb_;
};

void Render(const Derivation& node, const std::string& prefix, bool last,
            bool root, std::string* out) {
  if (!root) {
    *out += prefix + (last ? "`- " : "|- ");
  }
  *out += node.fact.ToString();
  if (node.fact.negated) {
    *out += "  [absent]";
  } else if (node.rule_index == -2) {
    *out += "  [builtin]";
  } else if (node.rule_index < 0) {
    *out += "  [edb]";
  } else {
    *out += StrFormat("  [rule %d]", node.rule_index);
  }
  *out += '\n';
  std::string child_prefix =
      root ? "" : prefix + (last ? "   " : "|  ");
  for (size_t i = 0; i < node.premises.size(); ++i) {
    Render(node.premises[i], child_prefix, i + 1 == node.premises.size(),
           /*root=*/false, out);
  }
}

}  // namespace

std::string Derivation::ToString() const {
  std::string out;
  Render(*this, "", /*last=*/true, /*root=*/true, &out);
  return out;
}

Result<Derivation> Explain(storage::Database* db, const ast::Program& program,
                           const ProvenanceTracker& tracker,
                           const ast::Atom& fact,
                           const ExplainOptions& options) {
  return Explainer(db, program, tracker, options).Build(fact, 0);
}

}  // namespace dire::eval
