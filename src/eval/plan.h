#ifndef DIRE_EVAL_PLAN_H_
#define DIRE_EVAL_PLAN_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "base/result.h"
#include "storage/value.h"

namespace dire::eval {

// Where a body atom reads its tuples during semi-naive evaluation.
enum class AtomSource {
  kFull,   // The accumulated relation.
  kDelta,  // Tuples newly derived in the previous iteration.
};

// A compiled argument: either an interned constant or a variable slot.
struct ArgRef {
  bool is_const = false;
  storage::ValueId value = 0;  // When is_const.
  int slot = -1;               // When !is_const.
};

// How CompileRule chooses the join order over the positive body atoms.
enum class PlannerMode {
  // Order by number of already-bound argument positions (a selectivity
  // proxy needing no statistics). The original planner; kept as a
  // baseline and a differential-testing foil.
  kGreedy,
  // Order by estimated scan/probe cardinality from live relation
  // statistics (row counts and per-column distinct sketches; see
  // eval/cost.h). Falls back to kGreedy when CompileOptions::stats is
  // null. Ties break on the lower body index, so plans are reproducible.
  kCost,
};

// Supplies relation statistics to the cost-based planner (see eval/cost.h
// for the interface and the Database-backed implementation).
class StatsProvider;

// A body atom compiled against a fixed join order. `check_positions` are
// argument positions whose value is already known when the atom executes
// (constants, variables bound by earlier atoms, or repeats within this
// atom); `bind_positions` bind fresh slots.
//
// `probe_positions` holds every position whose value is known *before* the
// atom executes (constants and earlier-atom variables — repeats bound
// within this atom are excluded), sorted ascending. The executor probes a
// hash index on the full set: a single-column index when one position is
// bound, a composite index over all of them otherwise, so a multi-bound
// atom touches exactly its matching rows instead of over-scanning one
// column's bucket. `probe_position` mirrors the first entry (or -1) for
// explanation and diagnostics.
struct CompiledAtom {
  std::string predicate;
  std::vector<ArgRef> args;
  std::vector<int> check_positions;
  std::vector<int> bind_positions;
  std::vector<int> probe_positions;
  int probe_position = -1;
  AtomSource source = AtomSource::kFull;
  // The subset of bind_positions whose slot is read downstream (by a later
  // atom or the head). When some bindings are dead, the executor
  // deduplicates on the live projection — the classic projection pushdown:
  //   buys(X,Y) :- trendy(X), buys(Z,Y).
  // scans each distinct Y of buys once instead of once per (Z,Y).
  std::vector<int> live_bind_positions;
  // Negation-as-failure: all positions are bound when the atom executes;
  // the executor continues iff the tuple is absent from the relation.
  // Negated atoms are placed after every positive atom in the join order.
  bool negated = false;
  // Comparison builtin (see eval/builtins.h): evaluated directly, both
  // positions bound, ordered after the positive atoms like negation.
  bool builtin = false;
  // Cost-based planner estimates (kCost with statistics only; -1 when the
  // plan was chosen without estimates). `est_scan_rows` is the estimated
  // size of the relation this atom reads; `est_rows` is the estimated
  // cumulative join cardinality after this atom executes (the count
  // CountAtomMatches reports as "actual"). Rendered by ExplainPlan.
  double est_scan_rows = -1;
  double est_rows = -1;
  // Single-column probes only: probe the sorted-run index instead of the
  // hash index (see PreferSortedProbe in eval/cost.h — chosen when the
  // estimated probe count is too small to amortize a hash-index build).
  // Both index kinds return matching rows in the same ascending-row order,
  // so the choice never changes results, only cost. Rendered by
  // ExplainPlan as "idx=sorted".
  bool sorted_probe = false;
};

// A rule compiled for bottom-up execution: ordered body atoms plus the head
// constructor.
struct CompiledRule {
  std::string head_predicate;
  size_t head_arity = 0;
  std::vector<ArgRef> head_args;
  std::vector<CompiledAtom> body;
  int num_slots = 0;
  // Source variable name of each slot (for plan explanation).
  std::vector<std::string> slot_names;
  // Estimated head tuples emitted per firing, pre-dedup (kCost with
  // statistics only; -1 otherwise). The evaluator compares it against the
  // observed emission count to feed the estimation-error histogram.
  double est_out_rows = -1;
};

struct CompileOptions {
  // Greedily reorder body atoms so that each atom joins on already-bound
  // variables where possible. When false the written order is kept (and
  // `planner` is ignored).
  bool reorder = true;
  // Join-order policy (see PlannerMode). kCost needs `stats`; without it
  // the compile silently uses the greedy proxy.
  PlannerMode planner = PlannerMode::kGreedy;
  // Statistics source for kCost. Not owned; must outlive the CompileRule
  // call only (estimates are copied into the compiled plan).
  const StatsProvider* stats = nullptr;
  // Index (into the *original* rule body) of the atom that must execute
  // first and read from the delta source, or -1. Used by semi-naive rule
  // differentiation. The delta atom leads the join order under every
  // planner (the parallel executor partitions the driving scan at
  // body[0]).
  int delta_atom = -1;
};

// Compiles `rule`, interning its constants into `symbols`. Fails on unsafe
// rules (head variable absent from the body).
Result<CompiledRule> CompileRule(const ast::Rule& rule,
                                 storage::SymbolTable* symbols,
                                 const CompileOptions& options = {});

// An index a compiled plan probes while executing: the relation the atom
// reads (by predicate and source) and the probed column set (size 1 =
// single-column index, larger = composite index). `sorted` marks a
// single-column sorted-run index instead of a hash index.
struct IndexRequirement {
  std::string predicate;
  AtomSource source = AtomSource::kFull;
  std::vector<int> positions;
  bool sorted = false;

  bool operator==(const IndexRequirement& other) const {
    return predicate == other.predicate && source == other.source &&
           positions == other.positions && sorted == other.sorted;
  }
};

// Every index `rule`'s executor will probe, deduplicated, in body order.
// The evaluator pre-builds these on the relations a plan reads before
// executing it, so execution itself never mutates a relation — which is
// what makes a round's read phase safe to run on many threads at once.
std::vector<IndexRequirement> RequiredIndexes(const CompiledRule& rule);

}  // namespace dire::eval

#endif  // DIRE_EVAL_PLAN_H_
