#ifndef DIRE_BASE_RESULT_H_
#define DIRE_BASE_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "base/status.h"

namespace dire {

// Result<T> holds either a value of type T or a non-OK Status. It is the
// return type of every fallible operation that produces a value.
//
//   Result<Program> p = ParseProgram(text);
//   if (!p.ok()) return p.status();
//   Use(p.value());
template <typename T>
class Result {
 public:
  // Implicit construction from a value or an error Status keeps call sites
  // terse: `return my_value;` / `return Status::ParseError(...)`.
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() &&
           "Result must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  // Requires: !ok(). Returns the error.
  const Status& status() const {
    assert(!ok());
    return std::get<Status>(rep_);
  }

  // Requires: ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace dire

// Assigns the value of a Result expression to `lhs`, or propagates its error.
#define DIRE_ASSIGN_OR_RETURN(lhs, expr)             \
  DIRE_ASSIGN_OR_RETURN_IMPL_(                       \
      DIRE_CONCAT_(_dire_result_, __LINE__), lhs, expr)

#define DIRE_CONCAT_INNER_(a, b) a##b
#define DIRE_CONCAT_(a, b) DIRE_CONCAT_INNER_(a, b)

#define DIRE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)  \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()

#endif  // DIRE_BASE_RESULT_H_
