#ifndef DIRE_BASE_LOG_H_
#define DIRE_BASE_LOG_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "base/result.h"

// Leveled structured logging for the library and the CLI. One line per
// record, to stderr by default, in either human or JSON form:
//
//   log::Info("wal", "replayed write-ahead log",
//             {{"records", "12"}, {"bytes", "4096"}});
//   // human: [info] wal: replayed write-ahead log records=12 bytes=4096
//   // json:  {"ts_ms":...,"level":"info","component":"wal",
//   //         "msg":"replayed write-ahead log","records":"12",...}
//
// The default level is kWarn, so a library embedded in someone else's
// process is silent in normal operation. The CLI maps --log-level /
// --log-json onto SetLevel / SetJsonOutput. Thread-safe: records are
// formatted outside the lock and emitted under it, so lines never
// interleave.
namespace dire::log {

enum class Level {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

// Stable lower-case name ("debug", "info", "warn", "error", "off").
const char* LevelName(Level level);

// Parses a level name as accepted by --log-level.
Result<Level> ParseLevel(const std::string& text);

void SetLevel(Level level);
Level GetLevel();

// True iff a record at `level` would currently be emitted. Callers can use
// this to skip expensive field construction.
bool Enabled(Level level);

// Switches between human-readable lines (default) and JSON lines.
void SetJsonOutput(bool json);

// Redirects records (already rendered, no trailing newline). Pass nullptr
// to restore the default stderr sink. For tests and embedders.
void SetSink(std::function<void(const std::string&)> sink);

using Field = std::pair<std::string, std::string>;

// Emits one record. `component` names the subsystem ("eval", "wal", ...).
void Write(Level level, const char* component, const std::string& message,
           const std::vector<Field>& fields = {});

inline void Debug(const char* component, const std::string& message,
                  const std::vector<Field>& fields = {}) {
  Write(Level::kDebug, component, message, fields);
}
inline void Info(const char* component, const std::string& message,
                 const std::vector<Field>& fields = {}) {
  Write(Level::kInfo, component, message, fields);
}
inline void Warn(const char* component, const std::string& message,
                 const std::vector<Field>& fields = {}) {
  Write(Level::kWarn, component, message, fields);
}
inline void Error(const char* component, const std::string& message,
                  const std::vector<Field>& fields = {}) {
  Write(Level::kError, component, message, fields);
}

}  // namespace dire::log

#endif  // DIRE_BASE_LOG_H_
