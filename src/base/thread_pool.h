#ifndef DIRE_BASE_THREAD_POOL_H_
#define DIRE_BASE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dire {

// A persistent pool of worker threads executing batches of indexed tasks.
//
// ParallelFor(n, fn) runs fn(0) .. fn(n-1) across the pool plus the calling
// thread and returns when every task has finished. Tasks are claimed through
// an atomic cursor, so a slow task never blocks the others from being picked
// up (chunked work-stealing without per-task queues). The pool holds
// `parallelism - 1` threads: the caller is always one of the workers, which
// makes ParallelFor(n, fn) with parallelism 1 an ordinary serial loop with
// no synchronization at all.
//
// The pool is intended for compute batches, not services: fn must not throw
// (error reporting in this codebase flows through Status values the caller
// aggregates after the barrier), and nested ParallelFor calls from inside a
// task are not supported.
class ThreadPool {
 public:
  // Spawns parallelism - 1 worker threads (so `parallelism` includes the
  // caller of ParallelFor). parallelism < 1 is treated as 1.
  explicit ThreadPool(int parallelism);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Total parallelism, including the calling thread.
  int parallelism() const { return static_cast<int>(threads_.size()) + 1; }

  // Runs fn(i) for each i in [0, num_tasks) and blocks until all complete.
  // fn may run on any pool thread or on the calling thread; indices are
  // claimed in order but may finish in any order.
  void ParallelFor(size_t num_tasks, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();
  // Claims and runs tasks of the current batch until the cursor is spent.
  void DrainBatch(const std::function<void(size_t)>& fn, size_t num_tasks);

  std::mutex mu_;
  std::condition_variable batch_ready_;
  std::condition_variable batch_done_;
  // Monotone batch sequence number; workers wake when it advances.
  uint64_t batch_seq_ = 0;
  const std::function<void(size_t)>* batch_fn_ = nullptr;
  size_t batch_size_ = 0;
  std::atomic<size_t> cursor_{0};
  size_t outstanding_workers_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

// A persistent pool of worker threads draining a task queue — the service
// counterpart to ThreadPool's batch model, used by the server front end to
// bound concurrent request execution. Unlike ThreadPool, the submitting
// thread is NOT a worker: Submit enqueues and returns, and exactly
// `workers` tasks ever run at once, which is what makes --max-inflight an
// enforceable bound.
//
// The queue itself is unbounded here; callers bound it upstream (the
// server's admission controller rejects before submitting). Tasks must not
// throw. Stop() stops dispatch; Drain() waits for already-running and
// already-queued tasks to finish.
class WorkerPool {
 public:
  // Spawns `workers` threads (values < 1 behave as 1).
  explicit WorkerPool(int workers);
  // Implies Stop(): queued-but-unstarted tasks are discarded, running tasks
  // are joined.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int workers() const { return static_cast<int>(threads_.size()); }

  // Enqueues `task`. Returns false (task dropped) after Stop().
  bool Submit(std::function<void()> task);

  // Blocks until every queued and running task has completed. New Submits
  // during a Drain are allowed and also waited for.
  void Drain();

  // Rejects further Submits and discards tasks not yet started; running
  // tasks complete. Idempotent.
  void Stop();

  // Tasks submitted but not yet started.
  size_t QueueDepth() const;
  // Tasks currently executing.
  size_t Running() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  size_t running_ = 0;
  bool stopped_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace dire

#endif  // DIRE_BASE_THREAD_POOL_H_
