#ifndef DIRE_BASE_GUARD_H_
#define DIRE_BASE_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>

#include "base/status.h"

namespace dire {

// Cooperative cancellation. Copies share one flag, so a token handed to a
// long-running computation can be cancelled from another thread:
//
//   CancellationToken token;
//   std::thread worker([&] { evaluator_with(token).Evaluate(program); });
//   token.Cancel();          // the evaluator returns kCancelled soon after
//
// Cancellation is sticky and one-way; there is no Reset.
class CancellationToken {
 public:
  CancellationToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

// Resource budgets for one guarded execution. A zero limit means unlimited.
struct GuardLimits {
  // Wall-clock budget measured on the steady clock from guard construction.
  int64_t timeout_ms = 0;
  // Budget on newly derived (successfully inserted) tuples.
  uint64_t max_tuples = 0;
  // Budget on approximate bytes held by the database's relations, as
  // reported through SetMemoryUsage (see storage::Relation::ApproxBytes).
  uint64_t max_memory_bytes = 0;
};

// ExecutionGuard bounds a long-running computation with a deadline, a tuple
// budget, a memory budget, and a cancellation token. The engine's static
// analyses (boundedness, data independence) are semi-decisions; whenever
// they return kInconclusive the runtime must fall back to dynamic
// governance, which this class provides.
//
// The guard is passed around as `const ExecutionGuard*` and shared by every
// stage of one execution; accounting members are mutable atomics so hot
// loops can charge it through a const pointer. A trip is *sticky*: once any
// limit is exceeded (or the token is cancelled), every later Check() returns
// the same non-OK status, so nested stages cannot accidentally resume.
//
// Callers decide the trip granularity: Check() reads the clock and should
// run once per batch (per rule firing, per fixpoint round, per expansion
// level); TuplesExhausted() is a clock-free atomic comparison cheap enough
// to run per inserted tuple, which is what makes the tuple budget exact.
class ExecutionGuard {
 public:
  // Unlimited guard with a private (never cancelled) token.
  ExecutionGuard() : ExecutionGuard(GuardLimits{}) {}
  explicit ExecutionGuard(GuardLimits limits,
                          CancellationToken token = CancellationToken())
      : limits_(limits),
        token_(std::move(token)),
        start_(std::chrono::steady_clock::now()) {}

  // Not copyable: one guard per execution; share by pointer.
  ExecutionGuard(const ExecutionGuard&) = delete;
  ExecutionGuard& operator=(const ExecutionGuard&) = delete;

  const GuardLimits& limits() const { return limits_; }
  const CancellationToken& token() const { return token_; }

  // Opaque correlation tag carried alongside the budgets (the serving layer
  // stores its per-request ID here) so a guard trip deep inside an
  // evaluation can be attributed to the request that owns it in logs and
  // traces. Set once before the guard is shared; no budget effect.
  void set_tag(uint64_t tag) { tag_ = tag; }
  uint64_t tag() const { return tag_; }

  // Charges `n` newly derived tuples. Trips the guard exactly when the
  // running count crosses max_tuples.
  void AddTuples(uint64_t n = 1) const;

  // Reports the current approximate memory footprint (absolute, not a
  // delta); trips the guard when it exceeds max_memory_bytes.
  void SetMemoryUsage(uint64_t bytes) const;

  // True as soon as the tuple budget is consumed. No clock read; safe to
  // call per tuple.
  bool TuplesExhausted() const {
    return limits_.max_tuples != 0 &&
           tuples_.load(std::memory_order_relaxed) >= limits_.max_tuples;
  }

  // Full check: deadline, tuple budget, memory budget, cancellation.
  // Returns Ok, or a sticky kResourceExhausted / kCancelled naming the
  // tripped limit.
  Status Check() const;

  // True if a previous Check()/AddTuples()/SetMemoryUsage() tripped. Does
  // not itself read the clock or the token.
  bool Tripped() const { return tripped_.load(std::memory_order_acquire); }

  // Human-readable description of the trip ("deadline exceeded after
  // 105ms", ...); empty while not tripped.
  std::string trip_reason() const;

  uint64_t tuples_charged() const {
    return tuples_.load(std::memory_order_relaxed);
  }
  uint64_t memory_usage() const {
    return memory_.load(std::memory_order_relaxed);
  }
  int64_t elapsed_ms() const;

 private:
  enum class Trip : int { kNone = 0, kDeadline, kTuples, kMemory, kCancel };

  void RecordTrip(Trip what) const;
  Status TripStatus() const;

  GuardLimits limits_;
  CancellationToken token_;
  uint64_t tag_ = 0;
  std::chrono::steady_clock::time_point start_;
  mutable std::atomic<uint64_t> tuples_{0};
  mutable std::atomic<uint64_t> memory_{0};
  mutable std::atomic<bool> tripped_{false};
  mutable std::atomic<int> trip_kind_{static_cast<int>(Trip::kNone)};
};

}  // namespace dire

#endif  // DIRE_BASE_GUARD_H_
