#include "base/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

#include "base/obs.h"
#include "base/string_util.h"

namespace dire::log {
namespace {

std::atomic<int> g_level{static_cast<int>(Level::kWarn)};
std::atomic<bool> g_json{false};

std::mutex& SinkMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::function<void(const std::string&)>& Sink() {
  static std::function<void(const std::string&)>* s =
      new std::function<void(const std::string&)>;
  return *s;
}

int64_t WallMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::string RenderHuman(Level level, const char* component,
                        const std::string& message,
                        const std::vector<Field>& fields) {
  std::string out = StrFormat("[%s] %s: ", LevelName(level), component);
  out += message;
  for (const Field& f : fields) {
    out += ' ';
    out += f.first;
    out += '=';
    out += f.second;
  }
  return out;
}

std::string RenderJson(Level level, const char* component,
                       const std::string& message,
                       const std::vector<Field>& fields) {
  std::string out = StrFormat(
      "{\"ts_ms\":%lld,\"level\":\"%s\",\"component\":\"%s\",\"msg\":\"%s\"",
      static_cast<long long>(WallMs()), LevelName(level),
      obs::JsonEscape(component).c_str(), obs::JsonEscape(message).c_str());
  for (const Field& f : fields) {
    out += ",\"";
    out += obs::JsonEscape(f.first);
    out += "\":\"";
    out += obs::JsonEscape(f.second);
    out += '"';
  }
  out += '}';
  return out;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "unknown";
}

Result<Level> ParseLevel(const std::string& text) {
  if (text == "debug") return Level::kDebug;
  if (text == "info") return Level::kInfo;
  if (text == "warn" || text == "warning") return Level::kWarn;
  if (text == "error") return Level::kError;
  if (text == "off" || text == "none") return Level::kOff;
  return Status::InvalidArgument(
      "unknown log level '" + text + "' (want debug|info|warn|error|off)");
}

void SetLevel(Level level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

Level GetLevel() {
  return static_cast<Level>(g_level.load(std::memory_order_relaxed));
}

bool Enabled(Level level) {
  return static_cast<int>(level) >= g_level.load(std::memory_order_relaxed) &&
         level != Level::kOff;
}

void SetJsonOutput(bool json) {
  g_json.store(json, std::memory_order_relaxed);
}

void SetSink(std::function<void(const std::string&)> sink) {
  std::lock_guard<std::mutex> lock(SinkMutex());
  Sink() = std::move(sink);
}

void Write(Level level, const char* component, const std::string& message,
           const std::vector<Field>& fields) {
  if (!Enabled(level)) return;
  std::string line = g_json.load(std::memory_order_relaxed)
                         ? RenderJson(level, component, message, fields)
                         : RenderHuman(level, component, message, fields);
  std::lock_guard<std::mutex> lock(SinkMutex());
  if (Sink()) {
    Sink()(line);
  } else {
    std::fprintf(stderr, "%s\n", line.c_str());
  }
}

}  // namespace dire::log
