#ifndef DIRE_BASE_BACKOFF_H_
#define DIRE_BASE_BACKOFF_H_

#include <cstdint>
#include <optional>

#include "base/rng.h"

namespace dire {

// Bounded exponential backoff with jitter, for retrying transient failures
// (EINTR/EAGAIN from fsync or rename, an overloaded downstream). The
// schedule for the n-th retry is
//
//   delay_n = min(initial_delay * multiplier^n, max_delay) * U
//
// where U is uniform in [1 - jitter, 1 + jitter]; the jittered delay is
// clamped back to max_delay. A policy bounds total attempts, so a permanent
// failure surfaces after max_attempts - 1 retries instead of looping
// forever.
struct BackoffPolicy {
  // Total attempts including the first; values < 1 behave as 1 (no retry).
  int max_attempts = 4;
  int64_t initial_delay_us = 200;
  int64_t max_delay_us = 10000;
  double multiplier = 2.0;
  // Fraction of each delay randomized in both directions; 0 disables.
  double jitter = 0.25;
};

// Tracks the retry schedule of one operation. Deterministic for a given
// (policy, seed) pair, so tests can pin the exact delays.
class Backoff {
 public:
  explicit Backoff(const BackoffPolicy& policy, uint64_t seed = 1)
      : policy_(policy), rng_(seed) {}

  // Called after a failed attempt: the microseconds to sleep before the
  // next attempt, or nullopt when the attempt budget is exhausted (the
  // failure is then permanent from the caller's point of view).
  std::optional<int64_t> NextDelayUs();

  // Failed attempts recorded so far (NextDelayUs calls).
  int failures() const { return failures_; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  int failures_ = 0;
};

// Sleeps the calling thread for `us` microseconds; no-op when us <= 0.
void SleepForMicros(int64_t us);

}  // namespace dire

#endif  // DIRE_BASE_BACKOFF_H_
