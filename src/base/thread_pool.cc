#include "base/thread_pool.h"

namespace dire {

ThreadPool::ThreadPool(int parallelism) {
  int extra = parallelism > 1 ? parallelism - 1 : 0;
  threads_.reserve(static_cast<size_t>(extra));
  for (int i = 0; i < extra; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  batch_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::DrainBatch(const std::function<void(size_t)>& fn,
                            size_t num_tasks) {
  while (true) {
    size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= num_tasks) return;
    fn(i);
  }
}

void ThreadPool::WorkerLoop() {
  uint64_t seen_seq = 0;
  while (true) {
    const std::function<void(size_t)>* fn = nullptr;
    size_t num_tasks = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      batch_ready_.wait(lock, [&] {
        return shutdown_ || batch_seq_ != seen_seq;
      });
      if (shutdown_) return;
      seen_seq = batch_seq_;
      // A worker that slept through an entire batch (the caller and the
      // other workers drained it and ParallelFor already returned) finds the
      // batch cleared; there is nothing to join.
      if (batch_fn_ == nullptr) continue;
      fn = batch_fn_;
      num_tasks = batch_size_;
      ++outstanding_workers_;
    }
    DrainBatch(*fn, num_tasks);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--outstanding_workers_ == 0) batch_done_.notify_all();
    }
  }
}

void ThreadPool::ParallelFor(size_t num_tasks,
                             const std::function<void(size_t)>& fn) {
  if (num_tasks == 0) return;
  if (threads_.empty()) {
    for (size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    batch_fn_ = &fn;
    batch_size_ = num_tasks;
    cursor_.store(0, std::memory_order_relaxed);
    ++batch_seq_;
  }
  batch_ready_.notify_all();
  // The caller is a worker too: it drains the same cursor, then waits for
  // any pool threads still finishing their last claimed task.
  DrainBatch(fn, num_tasks);
  std::unique_lock<std::mutex> lock(mu_);
  batch_done_.wait(lock, [&] { return outstanding_workers_ == 0; });
  batch_fn_ = nullptr;
  batch_size_ = 0;
}

WorkerPool::WorkerPool(int workers) {
  int n = workers > 1 ? workers : 1;
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  Stop();
  for (std::thread& t : threads_) t.join();
}

bool WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return false;
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
  return true;
}

void WorkerPool::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
}

void WorkerPool::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    queue_.clear();
    if (running_ == 0) idle_.notify_all();
  }
  task_ready_.notify_all();
}

size_t WorkerPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t WorkerPool::Running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void WorkerPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [&] { return stopped_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopped_ with nothing left to run.
      task = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--running_ == 0 && queue_.empty()) idle_.notify_all();
    }
  }
}

}  // namespace dire
