#ifndef DIRE_BASE_RNG_H_
#define DIRE_BASE_RNG_H_

#include <cassert>
#include <cstdint>

namespace dire {

// Deterministic, seedable PRNG (xoshiro256**). Used by the synthetic workload
// generators and property tests so that every run is reproducible from a
// seed. Not cryptographic.
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state, as recommended
    // by the xoshiro authors.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Requires bound > 0.
  uint64_t Uniform(uint64_t bound) {
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    uint64_t threshold = -bound % bound;
    while (true) {
      uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with probability p.
  bool Chance(double p) { return UniformDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace dire

#endif  // DIRE_BASE_RNG_H_
