#ifndef DIRE_BASE_STRING_UTIL_H_
#define DIRE_BASE_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dire {

// Joins `parts` with `sep`: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

// Splits `s` on the single character `sep`; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

// True if `s` starts with / ends with the given prefix or suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace dire

#endif  // DIRE_BASE_STRING_UTIL_H_
