#include "base/guard.h"

#include "base/obs.h"
#include "base/string_util.h"

namespace dire {

void ExecutionGuard::AddTuples(uint64_t n) const {
  uint64_t total = tuples_.fetch_add(n, std::memory_order_relaxed) + n;
  if (limits_.max_tuples != 0 && total >= limits_.max_tuples) {
    RecordTrip(Trip::kTuples);
  }
}

void ExecutionGuard::SetMemoryUsage(uint64_t bytes) const {
  memory_.store(bytes, std::memory_order_relaxed);
  if (limits_.max_memory_bytes != 0 && bytes > limits_.max_memory_bytes) {
    RecordTrip(Trip::kMemory);
  }
}

int64_t ExecutionGuard::elapsed_ms() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - start_)
      .count();
}

void ExecutionGuard::RecordTrip(Trip what) const {
  // First trip wins; later limits tripping do not overwrite the reason.
  int expected = static_cast<int>(Trip::kNone);
  bool first = trip_kind_.compare_exchange_strong(
      expected, static_cast<int>(what), std::memory_order_relaxed);
  tripped_.store(true, std::memory_order_release);
  if (!first || !obs::kEnabled) return;
  const char* kind = "none";
  switch (what) {
    case Trip::kDeadline:
      kind = "deadline";
      break;
    case Trip::kTuples:
      kind = "tuples";
      break;
    case Trip::kMemory:
      kind = "memory";
      break;
    case Trip::kCancel:
      kind = "cancel";
      break;
    case Trip::kNone:
      break;
  }
  obs::GetCounter("dire_guard_trips_total",
                  "Resource-guard trips by tripping limit", {{"kind", kind}})
      ->Add(1);
  // Headroom left in the limits that did NOT trip, at the moment of
  // exhaustion — how close the run was to a different limit firing first.
  if (limits_.timeout_ms != 0) {
    int64_t left = limits_.timeout_ms - elapsed_ms();
    obs::GetGauge("dire_guard_headroom_ms",
                  "Deadline budget remaining at the last guard trip")
        ->Set(left > 0 ? left : 0);
  }
  if (limits_.max_tuples != 0) {
    uint64_t used = tuples_charged();
    obs::GetGauge("dire_guard_headroom_tuples",
                  "Tuple budget remaining at the last guard trip")
        ->Set(used < limits_.max_tuples
                  ? static_cast<int64_t>(limits_.max_tuples - used)
                  : 0);
  }
  if (limits_.max_memory_bytes != 0) {
    uint64_t used = memory_usage();
    obs::GetGauge("dire_guard_headroom_bytes",
                  "Memory budget remaining at the last guard trip")
        ->Set(used < limits_.max_memory_bytes
                  ? static_cast<int64_t>(limits_.max_memory_bytes - used)
                  : 0);
  }
}

Status ExecutionGuard::Check() const {
  if (!Tripped()) {
    if (token_.cancelled()) {
      RecordTrip(Trip::kCancel);
    } else if (limits_.timeout_ms != 0 && elapsed_ms() >= limits_.timeout_ms) {
      RecordTrip(Trip::kDeadline);
    } else if (TuplesExhausted()) {
      RecordTrip(Trip::kTuples);
    }
  }
  if (!Tripped()) return Status::Ok();
  return TripStatus();
}

std::string ExecutionGuard::trip_reason() const {
  if (!Tripped()) return "";
  switch (static_cast<Trip>(trip_kind_.load(std::memory_order_relaxed))) {
    case Trip::kDeadline:
      return StrFormat("deadline exceeded after %lldms (budget %lldms)",
                       static_cast<long long>(elapsed_ms()),
                       static_cast<long long>(limits_.timeout_ms));
    case Trip::kTuples:
      return StrFormat("tuple budget exhausted (%llu of %llu derived)",
                       static_cast<unsigned long long>(tuples_charged()),
                       static_cast<unsigned long long>(limits_.max_tuples));
    case Trip::kMemory:
      return StrFormat("memory budget exhausted (%llu of %llu bytes)",
                       static_cast<unsigned long long>(memory_usage()),
                       static_cast<unsigned long long>(
                           limits_.max_memory_bytes));
    case Trip::kCancel:
      return "execution cancelled";
    case Trip::kNone:
      break;
  }
  return "";
}

Status ExecutionGuard::TripStatus() const {
  Trip what = static_cast<Trip>(trip_kind_.load(std::memory_order_relaxed));
  if (what == Trip::kCancel) return Status::Cancelled(trip_reason());
  return Status::ResourceExhausted(trip_reason());
}

}  // namespace dire
