#include "base/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "base/backoff.h"
#include "base/failpoints.h"
#include "base/obs.h"
#include "base/string_util.h"

namespace dire::io {

namespace {

// CRC-32C lookup table for the reflected Castagnoli polynomial 0x82F63B78,
// generated once on first use (byte-at-a-time; fast enough for snapshot and
// WAL sizes, and has no alignment or endianness subtleties).
const uint32_t* Crc32cTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int k = 0; k < 8; ++k) {
        crc = (crc >> 1) ^ (0x82F63B78u & (0u - (crc & 1u)));
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

// RAII fd that closes on scope exit; Release() disarms it.
class Fd {
 public:
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() {
    if (fd_ >= 0) ::close(fd_);
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  int get() const { return fd_; }
  // Closes now and reports failure (close can surface deferred write errors).
  bool CloseNow() {
    int fd = fd_;
    fd_ = -1;
    return ::close(fd) == 0;
  }

 private:
  int fd_;
};

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

// Writes all of `data` to `fd`, retrying short writes.
bool WriteAll(int fd, const char* data, size_t size) {
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<size_t>(n);
  }
  return true;
}

// Fsyncs the directory containing `path` so a completed rename survives a
// crash. Best-effort: some filesystems reject directory fsync.
void SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                          : slash == 0               ? std::string("/")
                                     : path.substr(0, slash);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

}  // namespace

uint32_t Crc32c(std::string_view data, uint32_t seed) {
  const uint32_t* table = Crc32cTable();
  uint32_t crc = ~seed;
  for (unsigned char c : data) {
    crc = (crc >> 8) ^ table[(crc ^ c) & 0xFFu];
  }
  return ~crc;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::Internal("read failed for " + path);
  return buffer.str();
}

Status AtomicWriteFile(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";

  DIRE_FAILPOINT("io.atomic.open");
  Fd fd(::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644));
  if (fd.get() < 0) return Errno("cannot create " + tmp);

#ifdef DIRE_FAILPOINTS_ENABLED
  // Simulated crash mid-write: only a prefix of the data reaches the temp
  // file. The destination must stay intact and the torn temp file must be
  // ignored by every reader.
  {
    Status torn = failpoints::Check("io.atomic.write");
    if (!torn.ok()) {
      WriteAll(fd.get(), contents.data(), contents.size() / 2);
      return torn;
    }
  }
#endif
  DIRE_FAILPOINT("io.atomic.enospc");
  if (!WriteAll(fd.get(), contents.data(), contents.size())) {
    return Errno("write failed for " + tmp);
  }

  DIRE_FAILPOINT("io.atomic.fsync");
  DIRE_RETURN_IF_ERROR(RetryTransientOp(
      "io.retry.fsync", "fsync failed for " + tmp,
      [&] { return ::fsync(fd.get()); }));
  if (!fd.CloseNow()) return Errno("close failed for " + tmp);

  DIRE_FAILPOINT("io.atomic.rename");
  DIRE_RETURN_IF_ERROR(RetryTransientOp(
      "io.retry.rename", "rename " + tmp + " -> " + path + " failed",
      [&] { return ::rename(tmp.c_str(), path.c_str()); }));
  SyncParentDir(path);
  return Status::Ok();
}

Status RetryTransientOp(const char* site, const std::string& what,
                        const std::function<int()>& op) {
  // Short delays: the callers hold durable-commit locks, so a transient
  // glitch should cost milliseconds, and a permanent failure must surface
  // before the caller's own deadline expires.
  static const BackoffPolicy kPolicy{/*max_attempts=*/4,
                                     /*initial_delay_us=*/200,
                                     /*max_delay_us=*/5000,
                                     /*multiplier=*/2.0,
                                     /*jitter=*/0.25};
  // Seeded per operation description so retry schedules are reproducible.
  Backoff backoff(kPolicy, Crc32c(what));
  while (true) {
    Status failure;
#ifdef DIRE_FAILPOINTS_ENABLED
    failure = failpoints::Check(site);
#else
    (void)site;
#endif
    if (failure.ok()) {
      if (op() == 0) return Status::Ok();
      const int err = errno;
      failure = Status::Internal(what + ": " + std::strerror(err));
      if (err != EINTR && err != EAGAIN) return failure;  // Permanent.
    }
    std::optional<int64_t> delay = backoff.NextDelayUs();
    if (!delay.has_value()) return failure;  // Attempt budget exhausted.
    obs::GetCounter("dire_io_transient_retries_total",
                    "Transient durable-I/O failures retried under backoff",
                    {{"site", site}})
        ->Add(1);
    SleepForMicros(*delay);
  }
}

Status MakeDirs(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("empty directory path");
  std::string partial;
  for (size_t i = 0; i <= path.size(); ++i) {
    if (i < path.size() && path[i] != '/') {
      partial += path[i];
      continue;
    }
    if (i < path.size()) partial += '/';
    if (partial.empty() || partial == "/") continue;
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Errno("mkdir " + partial + " failed");
    }
  }
  return Status::Ok();
}

std::string EscapeTsvField(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\0':
        out += "\\0";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeTsvField(std::string_view escaped) {
  std::string out;
  out.reserve(escaped.size());
  for (size_t i = 0; i < escaped.size(); ++i) {
    char c = escaped[i];
    if (c != '\\') {
      out += c;
      continue;
    }
    if (i + 1 == escaped.size()) {
      return Status::Corruption("dangling backslash in escaped field");
    }
    switch (escaped[++i]) {
      case '\\':
        out += '\\';
        break;
      case 't':
        out += '\t';
        break;
      case 'n':
        out += '\n';
        break;
      case 'r':
        out += '\r';
        break;
      case '0':
        out += '\0';
        break;
      default:
        return Status::Corruption(
            StrFormat("unknown escape '\\%c' in field", escaped[i]));
    }
  }
  return out;
}

std::string CrcToHex(uint32_t crc) {
  char buf[9];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

Result<uint32_t> CrcFromHex(std::string_view hex) {
  if (hex.size() != 8) {
    return Status::Corruption("checksum is not 8 hex digits: '" +
                              std::string(hex) + "'");
  }
  uint32_t value = 0;
  for (char c : hex) {
    value <<= 4;
    if (c >= '0' && c <= '9') {
      value |= static_cast<uint32_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      value |= static_cast<uint32_t>(c - 'a' + 10);
    } else {
      return Status::Corruption("checksum is not 8 hex digits: '" +
                                std::string(hex) + "'");
    }
  }
  return value;
}

}  // namespace dire::io
