#ifndef DIRE_BASE_HASH_H_
#define DIRE_BASE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dire {

// 64-bit mix function (SplitMix64 finalizer). Good avalanche behaviour for
// combining word-sized keys into hash-table buckets.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Order-dependent combination of two hash values.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return Mix64(seed ^ (v + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2)));
}

// Hashes a sequence of integer ids (e.g., a tuple of interned values).
template <typename Int>
uint64_t HashSpan(const Int* data, size_t n, uint64_t seed = 0) {
  uint64_t h = Mix64(seed ^ n);
  for (size_t i = 0; i < n; ++i) {
    h = HashCombine(h, static_cast<uint64_t>(data[i]));
  }
  return h;
}

template <typename Int>
uint64_t HashVector(const std::vector<Int>& v, uint64_t seed = 0) {
  return HashSpan(v.data(), v.size(), seed);
}

// Hash functor over std::vector<Int> for unordered containers keyed on
// tuples (e.g. composite join indexes, projection dedup sets).
template <typename Int>
struct VectorHash {
  size_t operator()(const std::vector<Int>& v) const {
    return static_cast<size_t>(HashVector(v));
  }
};

}  // namespace dire

#endif  // DIRE_BASE_HASH_H_
