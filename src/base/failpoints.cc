#include "base/failpoints.h"

#include <csignal>
#include <unistd.h>

#include <atomic>
#include <map>
#include <mutex>

#include "base/obs.h"

namespace dire::failpoints {
namespace {

struct State {
  Config config;
  int hits = 0;
};

// Number of armed failpoints; lets Check() skip the lock entirely while the
// registry is empty, which is the steady state outside failpoint tests.
std::atomic<int> g_armed{0};

std::mutex& Mutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::map<std::string, State>& Registry() {
  static std::map<std::string, State>* r = new std::map<std::string, State>;
  return *r;
}

}  // namespace

void Enable(const std::string& name, const Config& config) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto [it, inserted] = Registry().insert_or_assign(name, State{config, 0});
  (void)it;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void Disable(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mutex());
  if (Registry().erase(name) != 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisableAll() {
  std::lock_guard<std::mutex> lock(Mutex());
  g_armed.fetch_sub(static_cast<int>(Registry().size()),
                    std::memory_order_relaxed);
  Registry().clear();
}

int HitCount(const std::string& name) {
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(name);
  return it == Registry().end() ? 0 : it->second.hits;
}

Status Check(const char* name) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return Status::Ok();
  std::lock_guard<std::mutex> lock(Mutex());
  auto it = Registry().find(name);
  if (it == Registry().end()) return Status::Ok();
  State& state = it->second;
  int hit = state.hits++;
  const Config& c = state.config;
  bool fires = hit >= c.skip &&
               (c.fire_count < 0 || hit < c.skip + c.fire_count);
  if (obs::kEnabled) {
    // Per-site hit/fire counts, so tests can assert injection coverage
    // through the metrics registry instead of the registry's own HitCount.
    obs::GetCounter("dire_failpoint_hits_total",
                    "Armed-failpoint site evaluations", {{"site", name}})
        ->Add(1);
    if (fires) {
      obs::GetCounter("dire_failpoint_fires_total",
                      "Failpoint evaluations that injected a failure",
                      {{"site", name}})
          ->Add(1);
    }
  }
  if (!fires) return Status::Ok();
  if (c.crash) {
    // A real SIGKILL: no cleanup handlers, no atexit, no unwinding — the
    // process stops exactly here, like a power loss at this site.
    ::kill(::getpid(), SIGKILL);
  }
  std::string message = c.message.empty()
                            ? "failpoint " + std::string(name) + " fired"
                            : c.message;
  return Status(c.code, std::move(message));
}

}  // namespace dire::failpoints
