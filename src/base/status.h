#ifndef DIRE_BASE_STATUS_H_
#define DIRE_BASE_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace dire {

// Error categories used across the library. Modeled on the Status idiom used
// by large C++ database codebases (Arrow, RocksDB): no exceptions cross the
// public API; fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  // Malformed input text (parser) or malformed rule structure.
  kParseError,
  // A request that is structurally invalid (wrong arity, unknown predicate,
  // rule outside the class an algorithm supports, ...).
  kInvalidArgument,
  // A semi-decision procedure exhausted its budget without an answer.
  kInconclusive,
  // An internal invariant failed; indicates a bug in this library.
  kInternal,
  // Referenced entity (predicate, relation, file) does not exist.
  kNotFound,
  // An ExecutionGuard budget (deadline, tuple, or memory limit) tripped.
  // Partial results already materialized are sound (Datalog is monotone)
  // but incomplete.
  kResourceExhausted,
  // A CancellationToken was cancelled by the caller.
  kCancelled,
  // On-disk data failed a checksum or framing check (torn write, bit rot,
  // truncation that is not a recoverable tail). Recovery never silently
  // loads corrupt data; it either drops an uncommitted tail or reports this.
  kCorruption,
};

// Returns a stable human-readable name, e.g. "ParseError".
const char* StatusCodeName(StatusCode code);

// A cheap, copyable success-or-error value. The OK status carries no
// allocation; error statuses carry a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status Inconclusive(std::string m) {
    return Status(StatusCode::kInconclusive, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace dire

// Propagates a non-OK Status from the evaluated expression.
#define DIRE_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::dire::Status _dire_status = (expr);            \
    if (!_dire_status.ok()) return _dire_status;     \
  } while (false)

#endif  // DIRE_BASE_STATUS_H_
