#ifndef DIRE_BASE_OBS_H_
#define DIRE_BASE_OBS_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "base/status.h"

// Engine-wide observability: structured spans, a metrics registry, and
// exporters (Chrome trace_event JSON for chrome://tracing / Perfetto,
// Prometheus text exposition, and a JSON registry dump for the bench
// harness).
//
//   // Metrics: grab the series once (the pointer is stable for the process
//   // lifetime), bump it on the hot path.
//   static obs::Counter* tuples =
//       obs::GetCounter("dire_eval_tuples_derived_total",
//                       "New tuples inserted into IDB relations");
//   tuples->Add(n);
//
//   // Spans: RAII around a unit of work; attributes become trace args.
//   obs::Span span("eval.stratum", "eval");
//   span.Attr("stratum", stratum_index);
//
// Everything is thread-safe. Spans are recorded only between StartTracing()
// and StopTracing(); outside a trace a Span costs one relaxed atomic load.
// Metric mutation is a relaxed atomic add.
//
// Metric names follow `dire_<area>_<name>`; counters end in `_total`.
// Series may carry labels (e.g. {{"site", "eval.stratum"}}); a family is
// the set of series sharing a name, and exporters group by family.
//
// The DIRE_OBS CMake option (default ON) compiles the subsystem in. With
// -DDIRE_OBS=OFF every mutation below compiles to a no-op and the exporters
// emit empty documents, so the hot path carries no instrumentation cost;
// the API keeps the same shape so call sites need no #ifdefs.
namespace dire::obs {

#ifdef DIRE_OBS_ENABLED
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

// ---------------------------------------------------------------------------
// Metrics

// Monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    if constexpr (kEnabled) {
      value_.fetch_add(n, std::memory_order_relaxed);
    } else {
      (void)n;
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(int64_t v) {
    if constexpr (kEnabled) {
      value_.store(v, std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Histogram over uint64 values with log2 buckets. Bucket i holds values
// whose bit width is i: bucket 0 is exactly {0}, bucket 1 is {1}, bucket 2
// is {2,3}, bucket 3 is {4..7}, ..., bucket 64 is {2^63 .. 2^64-1}. The
// exporter renders cumulative Prometheus `le` boundaries from
// BucketUpperBound.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  static int BucketIndex(uint64_t v);
  // Largest value belonging to bucket `i` (UINT64_MAX for the last bucket).
  static uint64_t BucketUpperBound(int i);

  void Observe(uint64_t v) {
    if constexpr (kEnabled) {
      buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
      count_.fetch_add(1, std::memory_order_relaxed);
      sum_.fetch_add(v, std::memory_order_relaxed);
    } else {
      (void)v;
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket_count(int i) const {
    return buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
  void ResetForTest();

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets]{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

using Label = std::pair<std::string, std::string>;

// Looks up (or registers) the series `name{labels}`. The returned pointer
// is stable for the process lifetime; hot paths should call once and cache
// it. `help` is kept from the first registration of the family. Requesting
// an existing name as a different metric kind is an error (returns a
// process-lifetime dummy series that exporters skip).
Counter* GetCounter(const std::string& name, const char* help = nullptr,
                    const std::vector<Label>& labels = {});
Gauge* GetGauge(const std::string& name, const char* help = nullptr,
                const std::vector<Label>& labels = {});
Histogram* GetHistogram(const std::string& name, const char* help = nullptr,
                        const std::vector<Label>& labels = {});

// Prometheus text exposition (text/plain; version=0.0.4): `# HELP` and
// `# TYPE` per family, then one line per series (histograms expose
// cumulative `_bucket{le=...}`, `_sum`, `_count`).
std::string PrometheusText();

// The registry as a JSON object: {"counters": {...}, "gauges": {...},
// "histograms": {"name": {"count": n, "sum": n, "buckets": {"le": n}}}}.
// Used by the bench harness's BENCH_*.json output.
std::string MetricsJson();

// Writes PrometheusText() to `path` atomically.
Status WriteMetricsFile(const std::string& path);

// Zeroes every registered series (values only — pointers stay valid, so
// cached series keep working). Test isolation; not for production.
void ResetAllMetricsForTest();

// ---------------------------------------------------------------------------
// Tracing

// RAII span: records a Chrome "X" (complete) trace event covering its
// lifetime, nested by thread. `name` and `category` must be string
// literals (they are kept by pointer until export).
class Span {
 public:
  explicit Span(const char* name, const char* category = "dire");
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  // Attach a key/value attribute (rendered into the event's "args").
  void Attr(const char* key, int64_t value);
  void Attr(const char* key, uint64_t value);  // size_t lands here on LP64
  void Attr(const char* key, int value) {
    Attr(key, static_cast<int64_t>(value));
  }
  void Attr(const char* key, const std::string& value);
  void Attr(const char* key, const char* value);

 private:
#ifdef DIRE_OBS_ENABLED
  bool active_ = false;
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  int64_t start_us_ = 0;
  int depth_ = 0;
  // Attribute values pre-rendered as JSON (numbers verbatim, strings
  // escaped and quoted).
  std::vector<std::pair<const char*, std::string>> attrs_;
#endif
};

// Enables span recording (clearing any previous buffer) / disables it.
// The buffer is bounded; events past the cap are counted as dropped.
void StartTracing();
void StopTracing();
bool TracingActive();

// Number of events recorded in the current buffer (post-Stop it persists
// until the next StartTracing).
size_t TraceEventCount();

// The buffer as Chrome trace JSON: {"traceEvents": [...]}. Each event has
// name/cat/ph="X"/pid/tid/ts/dur (+ args and a "depth" arg for nesting
// assertions). Loadable in chrome://tracing and Perfetto.
std::string ChromeTraceJson();

// Writes ChromeTraceJson() to `path` atomically.
Status WriteTraceFile(const std::string& path);

// ---------------------------------------------------------------------------
// Shared helper

// Escapes `s` for inclusion inside a JSON string literal (no surrounding
// quotes added). Also used by the structured logger and bench harness.
std::string JsonEscape(std::string_view s);

}  // namespace dire::obs

#endif  // DIRE_BASE_OBS_H_
