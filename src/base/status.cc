#include "base/status.h"

namespace dire {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kInconclusive:
      return "Inconclusive";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kCorruption:
      return "Corruption";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace dire
