#include "base/signal.h"

#include <csignal>

#include <atomic>

namespace dire::signals {

namespace {

// Lock-free atomics are async-signal-safe; the handler does nothing else.
std::atomic<int> g_signal{0};
std::atomic<bool> g_requested{false};

void Handler(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
  g_requested.store(true, std::memory_order_release);
}

}  // namespace

void InstallShutdownHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = Handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // No SA_RESTART: blocking accept/poll must wake.
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  // A peer closing its socket mid-write must surface as a write error, not
  // kill the process.
  std::signal(SIGPIPE, SIG_IGN);
}

bool ShutdownRequested() {
  return g_requested.load(std::memory_order_acquire);
}

int ShutdownSignal() { return g_signal.load(std::memory_order_relaxed); }

void RequestShutdown() {
  g_requested.store(true, std::memory_order_release);
}

void ResetForTest() {
  g_requested.store(false, std::memory_order_release);
  g_signal.store(0, std::memory_order_relaxed);
}

}  // namespace dire::signals
