#ifndef DIRE_BASE_FAILPOINTS_H_
#define DIRE_BASE_FAILPOINTS_H_

#include <string>

#include "base/status.h"

// Deterministic fault injection for exercising error paths in tests.
//
// A failpoint is a named site in the library where a test can make an
// otherwise-infallible operation fail on demand:
//
//   dire::failpoints::Scoped fp("storage.relation_insert",
//                               {.skip = 10});           // 11th hit fails
//   Status s = evaluator.Evaluate(program);              // clean error,
//                                                        // consistent db
//
// Sites are compiled in only when DIRE_FAILPOINTS_ENABLED is defined (the
// DIRE_FAILPOINTS CMake option, ON by default so the test suite exercises
// every error path; production deployments configure it OFF and the
// DIRE_FAILPOINT macro expands to nothing). Firing is deterministic: a
// failpoint fires on hits `skip .. skip + fire_count - 1` of its site, in
// program order, never randomly.
//
// Registered sites:
//   storage.relation_insert   before a derived/loaded tuple is inserted
//   storage.allocate_relation before a relation is created
//   eval.stratum              at each stratum boundary in Evaluator
//   eval.checkpoint           before a checkpoint is persisted
//   io.atomic.open            temp file creation in AtomicWriteFile
//   io.atomic.write           short write: half the data lands, then "crash"
//   io.atomic.enospc          the data write fails wholesale (disk full)
//   io.atomic.fsync           fsync of the temp file fails; no rename happens
//   io.atomic.rename          rename of temp over destination fails
//   wal.append.short          a prefix of one WAL record lands, then "crash"
//   wal.append.enospc         the WAL record write fails wholesale
//   wal.sync                  WAL fsync fails after a complete append
//   io.retry.fsync            per-attempt transient fsync failure inside the
//                             bounded-backoff retry loop of AtomicWriteFile
//   io.retry.rename           per-attempt transient rename failure, same loop
//   wal.retry.sync            per-attempt transient WAL fsync failure
//   server.request            before a server worker executes a request
//   server.checkpoint         before the server folds the WAL into a
//                             snapshot after a write burst
//   ivm.apply                 at the start of Maintainer::ApplyDelta
//   ivm.counting_merge        before a counting stratum's accumulated
//                             count deltas are applied to the relation
//   ivm.dred_delete           before DRed physically removes the
//                             overestimated deletions
//   ivm.dred_rederive         before DRed's rederivation phase runs
//   ivm.insert_merge          before DRed's insert phase merges new tuples
namespace dire::failpoints {

struct Config {
  // Number of hits that pass through before the failpoint starts firing.
  int skip = 0;
  // Number of hits that fire after the skipped ones; -1 = every later hit.
  int fire_count = -1;
  // Status code injected when firing.
  StatusCode code = StatusCode::kInternal;
  // Injected message; empty means "failpoint <name> fired".
  std::string message;
  // When true, a firing hit does not inject a Status: it SIGKILLs the
  // process on the spot, exactly like a power loss at that site. Used by
  // the chaos tests (`dire_cli serve --crash-at SITE[:SKIP]`) to crash a
  // live server at a chosen moment in the commit protocol.
  bool crash = false;
};

// Arms `name` with `config`, replacing any previous arming and resetting its
// hit counter. Thread-safe.
void Enable(const std::string& name, const Config& config = Config());

// Disarms `name`. No-op if not armed.
void Disable(const std::string& name);

// Disarms everything (test teardown safety net).
void DisableAll();

// Hits observed by `name` since it was last armed; 0 when not armed.
// (Hits are only counted while armed, so an unused registry costs one
// relaxed atomic load per site.)
int HitCount(const std::string& name);

// The site-side check: counts a hit against `name` and returns the injected
// status when this hit is in the firing window, Ok otherwise. Call through
// DIRE_FAILPOINT rather than directly so release builds compile the site
// out.
Status Check(const char* name);

// RAII arming for tests: enables on construction, disables on destruction.
class Scoped {
 public:
  explicit Scoped(std::string name, const Config& config = Config())
      : name_(std::move(name)) {
    Enable(name_, config);
  }
  ~Scoped() { Disable(name_); }
  Scoped(const Scoped&) = delete;
  Scoped& operator=(const Scoped&) = delete;

 private:
  std::string name_;
};

}  // namespace dire::failpoints

// Site macro: propagates the injected status out of the enclosing
// Status/Result-returning function when the named failpoint fires.
#ifdef DIRE_FAILPOINTS_ENABLED
#define DIRE_FAILPOINT(name) \
  DIRE_RETURN_IF_ERROR(::dire::failpoints::Check(name))
#else
#define DIRE_FAILPOINT(name) \
  do {                       \
  } while (false)
#endif

#endif  // DIRE_BASE_FAILPOINTS_H_
