#include "base/obs.h"

#include <bit>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>

#include "base/io.h"
#include "base/string_util.h"

namespace dire::obs {

// ---------------------------------------------------------------------------
// Histogram bucketing (shared by both build modes: the math is part of the
// public contract and unit-tested even when mutation is compiled out)

int Histogram::BucketIndex(uint64_t v) {
  return v == 0 ? 0 : std::bit_width(v);
}

uint64_t Histogram::BucketUpperBound(int i) {
  if (i <= 0) return 0;
  if (i >= 64) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

void Histogram::ResetForTest() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

#ifdef DIRE_OBS_ENABLED

namespace {

// ---------------------------------------------------------------------------
// Metrics registry

enum class Kind { kCounter, kGauge, kHistogram };

struct Series {
  std::vector<Label> labels;
  // Exactly one of these is non-null, matching the family's kind.
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

struct Family {
  Kind kind = Kind::kCounter;
  std::string help;
  // Keyed by the serialized label set so each label combination is one
  // stable series.
  std::map<std::string, Series> series;
};

std::mutex& RegistryMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::map<std::string, Family>& Registry() {
  static std::map<std::string, Family>* r = new std::map<std::string, Family>;
  return *r;
}

// Prometheus HELP text escaping: backslash and newline are the only two
// escapes the exposition format defines for HELP lines.
std::string EscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string SerializeLabels(const std::vector<Label>& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const Label& l : labels) {
    if (!first) out += ',';
    first = false;
    out += l.first;
    out += "=\"";
    // Prometheus label value escaping: backslash, quote, newline.
    for (char c : l.second) {
      switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
      }
    }
    out += '"';
  }
  out += '}';
  return out;
}

// Looks up / creates the series; on a kind mismatch returns a dummy so the
// caller never gets a null (the dummy is not exported).
Series* GetSeries(const std::string& name, Kind kind, const char* help,
                  const std::vector<Label>& labels) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  Family& family = Registry()[name];
  if (family.series.empty()) {
    family.kind = kind;
    family.help = help != nullptr ? help : "";
  } else if (family.kind != kind) {
    static std::map<Kind, Series>* dummies = [] {
      auto* d = new std::map<Kind, Series>;
      (*d)[Kind::kCounter].counter = std::make_unique<Counter>();
      (*d)[Kind::kGauge].gauge = std::make_unique<Gauge>();
      (*d)[Kind::kHistogram].histogram = std::make_unique<Histogram>();
      return d;
    }();
    return &(*dummies)[kind];
  }
  if (family.help.empty() && help != nullptr) family.help = help;
  Series& s = family.series[SerializeLabels(labels)];
  if (s.counter == nullptr && s.gauge == nullptr && s.histogram == nullptr) {
    s.labels = labels;
    switch (kind) {
      case Kind::kCounter: s.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: s.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram: s.histogram = std::make_unique<Histogram>(); break;
    }
  }
  return &s;
}

const char* KindName(Kind k) {
  switch (k) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "untyped";
}

// Splices an extra label (e.g. histogram `le`) into a serialized label set.
std::string WithExtraLabel(const std::string& serialized,
                           const std::string& key, const std::string& value) {
  std::string extra = key + "=\"" + value + "\"";
  if (serialized.empty()) return "{" + extra + "}";
  std::string out = serialized;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

// ---------------------------------------------------------------------------
// Trace buffer

struct TraceEvent {
  const char* name;
  const char* category;
  int64_t ts_us;
  int64_t dur_us;
  int tid;
  int depth;
  std::vector<std::pair<const char*, std::string>> args;
};

// Bounds trace memory: ~200k events is tens of MB of JSON, plenty for any
// single evaluation; past it events are dropped and counted.
constexpr size_t kMaxTraceEvents = 200000;

std::atomic<bool> g_tracing{false};

std::mutex& TraceMutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

std::vector<TraceEvent>& TraceBuffer() {
  static std::vector<TraceEvent>* b = new std::vector<TraceEvent>;
  return *b;
}

std::atomic<uint64_t> g_dropped_events{0};

std::chrono::steady_clock::time_point& TraceEpoch() {
  static std::chrono::steady_clock::time_point t =
      std::chrono::steady_clock::now();
  return t;
}

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

int ThreadId() {
  static std::atomic<int> next{1};
  thread_local int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local int t_span_depth = 0;

Counter* SpansRecordedCounter() {
  static Counter* c = GetCounter("dire_obs_spans_total",
                                 "Spans recorded into the trace buffer");
  return c;
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry API

Counter* GetCounter(const std::string& name, const char* help,
                    const std::vector<Label>& labels) {
  return GetSeries(name, Kind::kCounter, help, labels)->counter.get();
}

Gauge* GetGauge(const std::string& name, const char* help,
                const std::vector<Label>& labels) {
  return GetSeries(name, Kind::kGauge, help, labels)->gauge.get();
}

Histogram* GetHistogram(const std::string& name, const char* help,
                        const std::vector<Label>& labels) {
  return GetSeries(name, Kind::kHistogram, help, labels)->histogram.get();
}

std::string PrometheusText() {
  std::string out;
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (const auto& [name, family] : Registry()) {
    if (family.series.empty()) continue;
    out += "# HELP " + name + ' ' +
           EscapeHelp(family.help.empty() ? name : family.help) + '\n';
    out += "# TYPE " + name + ' ' + KindName(family.kind) + '\n';
    for (const auto& [serialized, series] : family.series) {
      switch (family.kind) {
        case Kind::kCounter:
          out += name + serialized + ' ' +
                 std::to_string(series.counter->value()) + '\n';
          break;
        case Kind::kGauge:
          out += name + serialized + ' ' +
                 std::to_string(series.gauge->value()) + '\n';
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          uint64_t cumulative = 0;
          for (int i = 0; i < Histogram::kNumBuckets; ++i) {
            uint64_t in_bucket = h.bucket_count(i);
            cumulative += in_bucket;
            // Keep the exposition compact: only boundaries that gained
            // observations are emitted, plus +Inf below (cumulative counts
            // stay correct — a skipped empty bucket changes no later count).
            if (in_bucket == 0 || i >= 64) continue;
            out += name + "_bucket" +
                   WithExtraLabel(serialized, "le",
                                  std::to_string(
                                      Histogram::BucketUpperBound(i))) +
                   ' ' + std::to_string(cumulative) + '\n';
          }
          out += name + "_bucket" + WithExtraLabel(serialized, "le", "+Inf") +
                 ' ' + std::to_string(h.count()) + '\n';
          out += name + "_sum" + serialized + ' ' + std::to_string(h.sum()) +
                 '\n';
          out += name + "_count" + serialized + ' ' +
                 std::to_string(h.count()) + '\n';
          break;
        }
      }
    }
  }
  return out;
}

std::string MetricsJson() {
  std::string counters, gauges, histograms;
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (const auto& [name, family] : Registry()) {
    for (const auto& [serialized, series] : family.series) {
      std::string key = "\"";
      key += JsonEscape(name + serialized);
      key += '"';
      switch (family.kind) {
        case Kind::kCounter:
          if (!counters.empty()) counters += ',';
          counters += key + ":" + std::to_string(series.counter->value());
          break;
        case Kind::kGauge:
          if (!gauges.empty()) gauges += ',';
          gauges += key + ":" + std::to_string(series.gauge->value());
          break;
        case Kind::kHistogram: {
          const Histogram& h = *series.histogram;
          std::string buckets;
          for (int i = 0; i < Histogram::kNumBuckets; ++i) {
            uint64_t n = h.bucket_count(i);
            if (n == 0) continue;
            if (!buckets.empty()) buckets += ',';
            std::string le = i >= 64 ? "inf"
                                     : std::to_string(
                                           Histogram::BucketUpperBound(i));
            buckets += "\"" + le + "\":" + std::to_string(n);
          }
          if (!histograms.empty()) histograms += ',';
          histograms += key + ":{\"count\":" + std::to_string(h.count()) +
                        ",\"sum\":" + std::to_string(h.sum()) +
                        ",\"buckets\":{" + buckets + "}}";
          break;
        }
      }
    }
  }
  return "{\"counters\":{" + counters + "},\"gauges\":{" + gauges +
         "},\"histograms\":{" + histograms + "}}";
}

void ResetAllMetricsForTest() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (auto& [name, family] : Registry()) {
    for (auto& [serialized, series] : family.series) {
      if (series.counter != nullptr) series.counter->ResetForTest();
      if (series.gauge != nullptr) series.gauge->ResetForTest();
      if (series.histogram != nullptr) series.histogram->ResetForTest();
    }
  }
}

// ---------------------------------------------------------------------------
// Spans

Span::Span(const char* name, const char* category) {
  active_ = g_tracing.load(std::memory_order_relaxed);
  if (!active_) return;
  name_ = name;
  category_ = category;
  depth_ = t_span_depth++;
  start_us_ = NowUs();
}

Span::~Span() {
  if (!active_) return;
  int64_t end_us = NowUs();
  --t_span_depth;
  TraceEvent event{name_,      category_, start_us_, end_us - start_us_,
                   ThreadId(), depth_,    std::move(attrs_)};
  {
    std::lock_guard<std::mutex> lock(TraceMutex());
    if (TraceBuffer().size() >= kMaxTraceEvents) {
      g_dropped_events.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    TraceBuffer().push_back(std::move(event));
  }
  SpansRecordedCounter()->Add(1);
}

void Span::Attr(const char* key, int64_t value) {
  if (!active_) return;
  attrs_.emplace_back(key, std::to_string(value));
}

void Span::Attr(const char* key, uint64_t value) {
  if (!active_) return;
  attrs_.emplace_back(key, std::to_string(value));
}

void Span::Attr(const char* key, const std::string& value) {
  if (!active_) return;
  std::string rendered = "\"";
  rendered += JsonEscape(value);
  rendered += '"';
  attrs_.emplace_back(key, std::move(rendered));
}

void Span::Attr(const char* key, const char* value) {
  Attr(key, std::string(value));
}

void StartTracing() {
  std::lock_guard<std::mutex> lock(TraceMutex());
  TraceBuffer().clear();
  g_dropped_events.store(0, std::memory_order_relaxed);
  TraceEpoch() = std::chrono::steady_clock::now();
  g_tracing.store(true, std::memory_order_relaxed);
}

void StopTracing() { g_tracing.store(false, std::memory_order_relaxed); }

bool TracingActive() { return g_tracing.load(std::memory_order_relaxed); }

size_t TraceEventCount() {
  std::lock_guard<std::mutex> lock(TraceMutex());
  return TraceBuffer().size();
}

std::string ChromeTraceJson() {
  std::string out = "{\"traceEvents\":[";
  // Process metadata event; viewers use it for the track name.
  out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"dire\"}}";
  std::lock_guard<std::mutex> lock(TraceMutex());
  for (const TraceEvent& e : TraceBuffer()) {
    out += StrFormat(
        ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,"
        "\"tid\":%d,\"ts\":%lld,\"dur\":%lld,\"args\":{\"depth\":%d",
        JsonEscape(e.name).c_str(), JsonEscape(e.category).c_str(), e.tid,
        static_cast<long long>(e.ts_us), static_cast<long long>(e.dur_us),
        e.depth);
    for (const auto& [key, rendered] : e.args) {
      out += ",\"";
      out += JsonEscape(key);
      out += "\":";
      out += rendered;
    }
    out += "}}";
  }
  uint64_t dropped = g_dropped_events.load(std::memory_order_relaxed);
  if (dropped != 0) {
    out += StrFormat(",\n{\"name\":\"dropped_events\",\"ph\":\"M\",\"pid\":1,"
                     "\"tid\":0,\"args\":{\"count\":%llu}}",
                     static_cast<unsigned long long>(dropped));
  }
  out += "]}\n";
  return out;
}

#else  // !DIRE_OBS_ENABLED

// Instrumentation compiled out: lookups hand back process-lifetime dummies
// (mutation is already a no-op in the header), tracing is inert, and the
// exporters emit empty documents.

namespace {

template <typename T>
T* Dummy() {
  static T* t = new T;
  return t;
}

}  // namespace

Counter* GetCounter(const std::string&, const char*,
                    const std::vector<Label>&) {
  return Dummy<Counter>();
}

Gauge* GetGauge(const std::string&, const char*, const std::vector<Label>&) {
  return Dummy<Gauge>();
}

Histogram* GetHistogram(const std::string&, const char*,
                        const std::vector<Label>&) {
  return Dummy<Histogram>();
}

std::string PrometheusText() { return ""; }

std::string MetricsJson() {
  return "{\"counters\":{},\"gauges\":{},\"histograms\":{}}";
}

void ResetAllMetricsForTest() {}

Span::Span(const char*, const char*) {}
Span::~Span() = default;
void Span::Attr(const char*, int64_t) {}
void Span::Attr(const char*, uint64_t) {}
void Span::Attr(const char*, const std::string&) {}
void Span::Attr(const char*, const char*) {}

void StartTracing() {}
void StopTracing() {}
bool TracingActive() { return false; }
size_t TraceEventCount() { return 0; }

std::string ChromeTraceJson() { return "{\"traceEvents\":[]}\n"; }

#endif  // DIRE_OBS_ENABLED

Status WriteMetricsFile(const std::string& path) {
  return io::AtomicWriteFile(path, PrometheusText());
}

Status WriteTraceFile(const std::string& path) {
  return io::AtomicWriteFile(path, ChromeTraceJson());
}

}  // namespace dire::obs
