#ifndef DIRE_BASE_SIGNAL_H_
#define DIRE_BASE_SIGNAL_H_

namespace dire::signals {

// Process-wide graceful-shutdown flag, set by SIGTERM/SIGINT.
//
// A long-lived server cannot run cleanup from a signal handler (nothing
// async-signal-safe can checkpoint a database), so the handler only records
// the signal; the accept loop polls ShutdownRequested() and performs the
// drain-then-checkpoint sequence on a normal thread. SIGKILL by design never
// reaches the handler — crash recovery covers that path.

// Installs handlers for SIGTERM and SIGINT that record the signal.
// Idempotent; thread-safe.
void InstallShutdownHandlers();

// True once a shutdown signal was received or RequestShutdown() was called.
bool ShutdownRequested();

// The signal number that triggered shutdown (SIGTERM, SIGINT), or 0 when
// shutdown was requested programmatically or not at all.
int ShutdownSignal();

// Programmatic equivalent of receiving a shutdown signal (used by tests and
// by the server's own fatal-error path).
void RequestShutdown();

// Clears the flag (test isolation only; production never un-requests).
void ResetForTest();

}  // namespace dire::signals

#endif  // DIRE_BASE_SIGNAL_H_
