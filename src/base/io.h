#ifndef DIRE_BASE_IO_H_
#define DIRE_BASE_IO_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "base/result.h"

// Durable file I/O primitives shared by the persistence layer (snapshots,
// write-ahead log, checkpoint metadata).
//
// The central guarantee is AtomicWriteFile's all-or-nothing commit protocol:
// readers observe either the complete previous contents of `path` or the
// complete new contents, never a torn mixture — even across kill -9 or power
// loss. The protocol is the classic temp file + fsync + rename + directory
// fsync sequence; every step has a DIRE_FAILPOINT site so tests can simulate
// a crash (short write, ENOSPC, fsync failure) at each point and verify that
// the destination survives intact.
//
// Failpoint sites (see base/failpoints.h):
//   io.atomic.open    temp file cannot be created (e.g. permissions, ENOSPC)
//   io.atomic.write   short write: only a prefix of the data reaches the
//                     temp file before the "crash"
//   io.atomic.enospc  the write fails wholesale (disk full)
//   io.atomic.fsync   data written but fsync fails; the temp file is not
//                     renamed into place
//   io.atomic.rename  rename itself fails
//
// The fsync and rename steps additionally retry *transient* failures
// (EINTR/EAGAIN) under a bounded exponential backoff with jitter before
// giving up; the per-attempt failpoint sites io.retry.fsync and
// io.retry.rename inject such transient failures so tests can prove the
// retries happen and are capped.
namespace dire::io {

// CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum used
// by iSCSI, ext4, and LevelDB/RocksDB file formats. `seed` chains partial
// computations: Crc32c(a + b) == Crc32c(b, Crc32c(a)).
uint32_t Crc32c(std::string_view data, uint32_t seed = 0);

// True if `path` exists (any file type).
bool FileExists(const std::string& path);

// Reads the whole file. kNotFound if it cannot be opened.
Result<std::string> ReadFile(const std::string& path);

// Atomically replaces `path` with `contents`: writes `path + ".tmp"`, fsyncs
// it, renames it over `path`, and fsyncs the parent directory so the rename
// itself is durable. On any failure the previous contents of `path` are
// untouched (a stale .tmp file may remain; it is overwritten by the next
// attempt and ignored by all readers).
Status AtomicWriteFile(const std::string& path, std::string_view contents);

// Creates directory `path` (and missing parents). OK if it already exists.
Status MakeDirs(const std::string& path);

// Runs `op` (a syscall-style callable returning 0 on success and setting
// errno on failure) under the durable-I/O retry policy: transient errnos
// (EINTR, EAGAIN) — and failures injected through the per-attempt failpoint
// `site` — are retried with bounded exponential backoff and jitter; any
// other errno, or an exhausted attempt budget, returns the failure. Retries
// are counted by the dire_io_transient_retries_total metric. `what`
// describes the operation for the error message.
Status RetryTransientOp(const char* site, const std::string& what,
                        const std::function<int()>& op);

// Escaping for tab-separated persistence formats. Escapes backslash, tab,
// newline, carriage return, and NUL as \\ \t \n \r \0 so that every value
// string round-trips through the snapshot and WAL formats.
std::string EscapeTsvField(std::string_view raw);

// Inverse of EscapeTsvField. kCorruption on a dangling or unknown escape.
Result<std::string> UnescapeTsvField(std::string_view escaped);

// Renders a CRC as fixed-width lowercase hex ("00000000".."ffffffff").
std::string CrcToHex(uint32_t crc);

// Parses CrcToHex output; kCorruption on malformed input.
Result<uint32_t> CrcFromHex(std::string_view hex);

}  // namespace dire::io

#endif  // DIRE_BASE_IO_H_
