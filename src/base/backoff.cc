#include "base/backoff.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace dire {

std::optional<int64_t> Backoff::NextDelayUs() {
  ++failures_;
  if (failures_ >= std::max(policy_.max_attempts, 1)) return std::nullopt;
  double delay = static_cast<double>(policy_.initial_delay_us) *
                 std::pow(policy_.multiplier, failures_ - 1);
  delay = std::min(delay, static_cast<double>(policy_.max_delay_us));
  if (policy_.jitter > 0) {
    delay *= 1.0 + policy_.jitter * (2.0 * rng_.UniformDouble() - 1.0);
    delay = std::min(delay, static_cast<double>(policy_.max_delay_us));
  }
  return std::max<int64_t>(0, static_cast<int64_t>(std::llround(delay)));
}

void SleepForMicros(int64_t us) {
  if (us <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace dire
