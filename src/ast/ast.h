#ifndef DIRE_AST_AST_H_
#define DIRE_AST_AST_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace dire::ast {

// A term of a function-free Horn clause: either a variable or a constant.
// The paper's model (after Reiter) is function-free Datalog, so terms never
// nest. Variables are written with a leading upper-case letter or '_'
// ("X", "Z1"); constants with a leading lower-case letter, digit, or quotes
// ("alice", "42").
class Term {
 public:
  enum class Kind : uint8_t { kVariable, kConstant };

  Term() : kind_(Kind::kConstant) {}

  static Term Var(std::string name) {
    return Term(Kind::kVariable, std::move(name));
  }
  static Term Const(std::string text) {
    return Term(Kind::kConstant, std::move(text));
  }

  Kind kind() const { return kind_; }
  bool IsVariable() const { return kind_ == Kind::kVariable; }
  bool IsConstant() const { return kind_ == Kind::kConstant; }

  // The variable name or constant spelling.
  const std::string& text() const { return text_; }

  std::string ToString() const { return text_; }

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind_ == b.kind_ && a.text_ == b.text_;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    return a.text_ < b.text_;
  }

 private:
  Term(Kind kind, std::string text) : kind_(kind), text_(std::move(text)) {}

  Kind kind_;
  std::string text_;
};

// An atom p(t1, ..., tn), or its negation `not p(t1, ..., tn)` when used as
// a body literal of a stratified program. Predicates are identified by
// name; within one program a predicate name is expected to be used with a
// single arity (the parser enforces this).
//
// Negation is a substrate feature: the paper's boundedness analysis covers
// positive (definite) rules only, and ast::MakeDefinition rejects negated
// body atoms accordingly.
struct Atom {
  std::string predicate;
  std::vector<Term> args;
  bool negated = false;  // Only meaningful in rule bodies.

  Atom() = default;
  Atom(std::string pred, std::vector<Term> arguments)
      : predicate(std::move(pred)), args(std::move(arguments)) {}

  size_t arity() const { return args.size(); }

  // Variable names appearing in this atom, in first-occurrence order.
  std::vector<std::string> Variables() const;

  // "p(X,a,Y)" / "not p(X,a,Y)".
  std::string ToString() const;

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.predicate == b.predicate && a.negated == b.negated &&
           a.args == b.args;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.negated != b.negated) return a.negated < b.negated;
    if (a.predicate != b.predicate) return a.predicate < b.predicate;
    return a.args < b.args;
  }
};

// A Horn rule `head :- body.`; an empty body makes the rule a fact.
struct Rule {
  Atom head;
  std::vector<Atom> body;

  Rule() = default;
  Rule(Atom h, std::vector<Atom> b) : head(std::move(h)), body(std::move(b)) {}

  bool IsFact() const { return body.empty(); }

  // Distinguished variables: variables of the head (Section 2 of the paper).
  std::set<std::string> DistinguishedVariables() const;
  // Variables appearing only in the body.
  std::set<std::string> NondistinguishedVariables() const;
  // All variables of the rule.
  std::set<std::string> AllVariables() const;

  // True if `predicate` occurs in the body.
  bool BodyUses(const std::string& predicate) const;
  // Number of body occurrences of `predicate`.
  int BodyCount(const std::string& predicate) const;

  // "t(X,Y) :- e(X,Z), t(Z,Y)." (facts render as "p(a,b).").
  std::string ToString() const;

  friend bool operator==(const Rule& a, const Rule& b) {
    return a.head == b.head && a.body == b.body;
  }
};

// A Datalog program: a list of rules (and facts). Order is preserved but has
// no semantic meaning.
struct Program {
  std::vector<Rule> rules;

  Program() = default;
  explicit Program(std::vector<Rule> r) : rules(std::move(r)) {}

  // All rules whose head predicate is `predicate`.
  std::vector<Rule> RulesFor(const std::string& predicate) const;

  // Predicates appearing in some rule head (the IDB of the paper's model,
  // plus facts' predicates).
  std::set<std::string> HeadPredicates() const;
  // Predicates appearing only in rule bodies (the EDB).
  std::set<std::string> EdbPredicates() const;
  // Every predicate mentioned anywhere.
  std::set<std::string> AllPredicates() const;

  // One rule per line.
  std::string ToString() const;
};

}  // namespace dire::ast

#endif  // DIRE_AST_AST_H_
