#ifndef DIRE_AST_CLASSIFY_H_
#define DIRE_AST_CLASSIFY_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "base/result.h"

namespace dire::ast {

// ---------------------------------------------------------------------------
// Rule-class predicates from the paper (Sections 1-5). All take the name of
// the recursively defined predicate `target`.
// ---------------------------------------------------------------------------

// True if the rule's body contains `target` (directly recursive rule).
bool IsRecursiveRule(const Rule& rule, const std::string& target);

// "A linear recursive rule is a rule with exactly one recursive predicate"
// (§1): exactly one body occurrence of `target`.
bool IsLinearRecursive(const Rule& rule, const std::string& target);

// "The body of a regular recursive rule contains only one nonrecursive
// predicate" (§1): linear, with exactly one non-target body atom.
bool IsRegularRecursive(const Rule& rule, const std::string& target);

// The paper's standing restriction (§1): the rule head contains no repeated
// variables and no constants.
bool HeadHasNoRepeatsOrConstants(const Rule& rule);

// True if some nonrecursive predicate name occurs more than once in the body
// (the class excluded by Theorem 4.2's completeness direction).
bool HasRepeatedNonrecursivePredicate(const Rule& rule,
                                      const std::string& target);

// Sagiv's typed class (§1): every variable appears in exactly one argument
// position index, though possibly in several atoms.
bool IsTyped(const Rule& rule);

// ---------------------------------------------------------------------------
// RecursiveDefinition: the standardized form the paper's algorithms operate
// on — a set of recursive rules and exit rules for one predicate, with
// identical heads and pairwise-disjoint nondistinguished variables (§2).
// ---------------------------------------------------------------------------

struct RecursiveDefinition {
  std::string target;
  size_t arity = 0;

  // Common head variable names, in head-position order. Every rule below has
  // head target(head_vars[0], ..., head_vars[arity-1]).
  std::vector<std::string> head_vars;

  std::vector<Rule> recursive_rules;
  std::vector<Rule> exit_rules;

  bool AllRecursiveRulesLinear() const {
    for (const Rule& r : recursive_rules) {
      if (!IsLinearRecursive(r, target)) return false;
    }
    return true;
  }
};

struct DefinitionOptions {
  // The paper assumes (§2 end) that all nonrecursive predicates are EDB
  // predicates; with this flag set we reject definitions whose rule bodies
  // mention another IDB predicate.
  bool require_edb_body = true;
};

// Extracts and standardizes the definition of `target` from `program`.
// Fails if `target` has no rules, if some head repeats a variable or uses a
// constant, or (by default) if a body atom uses another IDB predicate.
Result<RecursiveDefinition> MakeDefinition(const Program& program,
                                           const std::string& target,
                                           const DefinitionOptions& options = {});

}  // namespace dire::ast

#endif  // DIRE_AST_CLASSIFY_H_
