#include "ast/ast.h"

#include <algorithm>

namespace dire::ast {

std::vector<std::string> Atom::Variables() const {
  std::vector<std::string> out;
  for (const Term& t : args) {
    if (t.IsVariable() &&
        std::find(out.begin(), out.end(), t.text()) == out.end()) {
      out.push_back(t.text());
    }
  }
  return out;
}

std::string Atom::ToString() const {
  std::string out = negated ? "not " + predicate : predicate;
  out += '(';
  for (size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out += ',';
    out += args[i].ToString();
  }
  out += ')';
  return out;
}

std::set<std::string> Rule::DistinguishedVariables() const {
  std::set<std::string> out;
  for (const Term& t : head.args) {
    if (t.IsVariable()) out.insert(t.text());
  }
  return out;
}

std::set<std::string> Rule::NondistinguishedVariables() const {
  std::set<std::string> distinguished = DistinguishedVariables();
  std::set<std::string> out;
  for (const Atom& a : body) {
    for (const Term& t : a.args) {
      if (t.IsVariable() && distinguished.count(t.text()) == 0) {
        out.insert(t.text());
      }
    }
  }
  return out;
}

std::set<std::string> Rule::AllVariables() const {
  std::set<std::string> out = DistinguishedVariables();
  for (const Atom& a : body) {
    for (const Term& t : a.args) {
      if (t.IsVariable()) out.insert(t.text());
    }
  }
  return out;
}

bool Rule::BodyUses(const std::string& predicate) const {
  for (const Atom& a : body) {
    if (a.predicate == predicate) return true;
  }
  return false;
}

int Rule::BodyCount(const std::string& predicate) const {
  int n = 0;
  for (const Atom& a : body) {
    if (a.predicate == predicate) ++n;
  }
  return n;
}

std::string Rule::ToString() const {
  std::string out = head.ToString();
  if (!body.empty()) {
    out += " :- ";
    for (size_t i = 0; i < body.size(); ++i) {
      if (i != 0) out += ", ";
      out += body[i].ToString();
    }
  }
  out += '.';
  return out;
}

std::vector<Rule> Program::RulesFor(const std::string& predicate) const {
  std::vector<Rule> out;
  for (const Rule& r : rules) {
    if (r.head.predicate == predicate) out.push_back(r);
  }
  return out;
}

std::set<std::string> Program::HeadPredicates() const {
  std::set<std::string> out;
  for (const Rule& r : rules) out.insert(r.head.predicate);
  return out;
}

std::set<std::string> Program::EdbPredicates() const {
  std::set<std::string> heads = HeadPredicates();
  std::set<std::string> out;
  for (const Rule& r : rules) {
    for (const Atom& a : r.body) {
      if (heads.count(a.predicate) == 0) out.insert(a.predicate);
    }
  }
  return out;
}

std::set<std::string> Program::AllPredicates() const {
  std::set<std::string> out;
  for (const Rule& r : rules) {
    out.insert(r.head.predicate);
    for (const Atom& a : r.body) out.insert(a.predicate);
  }
  return out;
}

std::string Program::ToString() const {
  std::string out;
  for (const Rule& r : rules) {
    out += r.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace dire::ast
