#ifndef DIRE_AST_SUBSTITUTION_H_
#define DIRE_AST_SUBSTITUTION_H_

#include <map>
#include <optional>
#include <string>

#include "ast/ast.h"

namespace dire::ast {

// A mapping from variable names to terms. Applying a substitution replaces
// each bound variable by its image; unbound variables and constants are left
// unchanged. Substitutions are *not* applied recursively: images are terms of
// the target, never rewritten again (sufficient for function-free clauses).
class Substitution {
 public:
  Substitution() = default;

  // Binds `var` to `value`, overwriting any previous binding.
  void Bind(const std::string& var, Term value) {
    map_[var] = std::move(value);
  }

  // Returns the binding for `var`, if any.
  std::optional<Term> Lookup(const std::string& var) const {
    auto it = map_.find(var);
    if (it == map_.end()) return std::nullopt;
    return it->second;
  }

  bool Contains(const std::string& var) const { return map_.count(var) != 0; }
  size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }

  Term Apply(const Term& t) const;
  Atom Apply(const Atom& a) const;
  Rule Apply(const Rule& r) const;

  const std::map<std::string, Term>& map() const { return map_; }

  // "{X->a, Y->Z}".
  std::string ToString() const;

 private:
  std::map<std::string, Term> map_;
};

// Renames every variable of `r` by appending `suffix` (e.g. "_3"), producing
// a variant whose variables are disjoint from any rule not sharing the
// suffix. Used by ExpandRule's per-iteration subscripting (§2 of the paper).
Rule RenameVariables(const Rule& r, const std::string& suffix);
Atom RenameVariables(const Atom& a, const std::string& suffix);

}  // namespace dire::ast

#endif  // DIRE_AST_SUBSTITUTION_H_
