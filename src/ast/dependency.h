#ifndef DIRE_AST_DEPENDENCY_H_
#define DIRE_AST_DEPENDENCY_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ast/ast.h"

namespace dire::ast {

// The predicate dependency graph of a program: an edge p -> q whenever q
// appears in the body of some rule with head p. Used by the evaluator to
// stratify general positive programs into strongly connected components
// evaluated bottom-up.
class DependencyGraph {
 public:
  explicit DependencyGraph(const Program& program);

  // Predicates that p directly depends on.
  const std::set<std::string>& DependenciesOf(const std::string& p) const;

  // True if `p` is recursive: its definition depends, directly or indirectly,
  // on itself (§1 of the paper).
  bool IsRecursive(const std::string& p) const;

  // Strongly connected components in reverse-topological (evaluation) order:
  // every component only depends on itself and earlier components.
  const std::vector<std::vector<std::string>>& Strata() const {
    return strata_;
  }

  // The component index of `p` within Strata(), or -1 for unknown predicates.
  int StratumOf(const std::string& p) const;

  std::set<std::string> Predicates() const;

  // True if no negative dependency (p :- ..., not q, ...) stays within a
  // single strongly connected component — the stratifiability condition for
  // evaluating programs with negation-as-failure.
  bool IsStratified() const { return stratification_violation_.empty(); }

  // A human-readable description of the first violation, or "" if
  // stratified.
  const std::string& StratificationViolation() const {
    return stratification_violation_;
  }

 private:
  void ComputeSccs();

  std::map<std::string, std::set<std::string>> edges_;
  std::set<std::pair<std::string, std::string>> negative_edges_;
  std::string stratification_violation_;
  std::set<std::string> recursive_;
  std::vector<std::vector<std::string>> strata_;
  std::map<std::string, int> stratum_of_;
  std::set<std::string> empty_;
};

}  // namespace dire::ast

#endif  // DIRE_AST_DEPENDENCY_H_
