#ifndef DIRE_AST_UNIFY_H_
#define DIRE_AST_UNIFY_H_

#include <optional>

#include "ast/ast.h"
#include "ast/substitution.h"

namespace dire::ast {

// Most-general unifier of two function-free atoms, or nullopt if they do not
// unify. Because terms never nest, unification reduces to union-find over
// argument pairs; no occurs check is needed.
std::optional<Substitution> Unify(const Atom& a, const Atom& b);

// Matching (one-way unification): a substitution s over the variables of
// `pattern` with s(pattern) == target, or nullopt. Variables of `target` are
// treated as constants.
std::optional<Substitution> Match(const Atom& pattern, const Atom& target);

}  // namespace dire::ast

#endif  // DIRE_AST_UNIFY_H_
