#include "ast/classify.h"

#include <map>
#include <set>

#include "ast/substitution.h"
#include "base/string_util.h"

namespace dire::ast {

bool IsRecursiveRule(const Rule& rule, const std::string& target) {
  return rule.BodyUses(target);
}

bool IsLinearRecursive(const Rule& rule, const std::string& target) {
  return rule.BodyCount(target) == 1;
}

bool IsRegularRecursive(const Rule& rule, const std::string& target) {
  return IsLinearRecursive(rule, target) &&
         rule.body.size() == 2;  // One recursive atom + one nonrecursive atom.
}

bool HeadHasNoRepeatsOrConstants(const Rule& rule) {
  std::set<std::string> seen;
  for (const Term& t : rule.head.args) {
    if (!t.IsVariable()) return false;
    if (!seen.insert(t.text()).second) return false;
  }
  return true;
}

bool HasRepeatedNonrecursivePredicate(const Rule& rule,
                                      const std::string& target) {
  std::map<std::string, int> counts;
  for (const Atom& a : rule.body) {
    if (a.predicate != target) ++counts[a.predicate];
  }
  for (const auto& [pred, n] : counts) {
    if (n > 1) return true;
  }
  return false;
}

bool IsTyped(const Rule& rule) {
  // Position index of each variable; a variable seen at two distinct indices
  // (in head or body) makes the rule untyped.
  std::map<std::string, size_t> position_of;
  auto check_atom = [&](const Atom& a) {
    for (size_t i = 0; i < a.args.size(); ++i) {
      const Term& t = a.args[i];
      if (!t.IsVariable()) continue;
      auto [it, inserted] = position_of.emplace(t.text(), i);
      if (!inserted && it->second != i) return false;
    }
    return true;
  };
  if (!check_atom(rule.head)) return false;
  for (const Atom& a : rule.body) {
    if (!check_atom(a)) return false;
  }
  return true;
}

namespace {

// Renames rule `r` so that its head becomes target(head_vars...) and its
// nondistinguished variables avoid `used_names`; freshly chosen names are
// added to `used_names`.
Rule Standardize(const Rule& r, const std::vector<std::string>& head_vars,
                 std::set<std::string>* used_names, int rule_index) {
  Substitution s;
  for (size_t i = 0; i < r.head.args.size(); ++i) {
    const std::string& old_name = r.head.args[i].text();
    if (old_name != head_vars[i]) s.Bind(old_name, Term::Var(head_vars[i]));
  }
  std::set<std::string> head_var_set(head_vars.begin(), head_vars.end());
  for (const std::string& w : r.NondistinguishedVariables()) {
    std::string candidate = w;
    if (head_var_set.count(candidate) != 0 || used_names->count(candidate) != 0) {
      candidate = StrFormat("%s_r%d", w.c_str(), rule_index);
      int uniquifier = 0;
      while (head_var_set.count(candidate) != 0 ||
             used_names->count(candidate) != 0) {
        candidate = StrFormat("%s_r%d_%d", w.c_str(), rule_index, uniquifier++);
      }
    }
    used_names->insert(candidate);
    if (candidate != w) s.Bind(w, Term::Var(candidate));
  }
  return s.Apply(r);
}

}  // namespace

Result<RecursiveDefinition> MakeDefinition(const Program& program,
                                           const std::string& target,
                                           const DefinitionOptions& options) {
  std::vector<Rule> rules = program.RulesFor(target);
  if (rules.empty()) {
    return Status::NotFound("no rules define predicate '" + target + "'");
  }

  RecursiveDefinition def;
  def.target = target;
  def.arity = rules.front().head.arity();

  for (const Rule& r : rules) {
    if (r.head.arity() != def.arity) {
      return Status::InvalidArgument(
          StrFormat("predicate '%s' used with arities %zu and %zu",
                    target.c_str(), def.arity, r.head.arity()));
    }
    if (r.IsFact()) {
      return Status::InvalidArgument(
          "facts for the recursive predicate are not part of a definition; "
          "store them in the EDB instead: " +
          r.ToString());
    }
    if (!HeadHasNoRepeatsOrConstants(r)) {
      return Status::InvalidArgument(
          "rule head must contain no repeated variables and no constants "
          "(paper §2 restriction): " +
          r.ToString());
    }
    for (const Atom& a : r.body) {
      if (a.negated) {
        return Status::InvalidArgument(
            "the paper's analysis covers definite (negation-free) rules: " +
            r.ToString());
      }
      // Comparison builtins (eval/builtins.h) denote fixed infinite
      // relations; the boundedness theorems quantify over arbitrary finite
      // EDBs, so their dependence direction would be unsound here.
      if (a.predicate == "neq" || a.predicate == "lt" ||
          a.predicate == "leq") {
        return Status::InvalidArgument(
            "comparison builtin '" + a.predicate +
            "' is outside the boundedness analysis; the theorems assume "
            "ordinary EDB relations");
      }
    }
  }

  if (options.require_edb_body) {
    // Predicates defined only by facts are stored data, i.e. EDB; only
    // proper rules make a predicate intensional.
    std::set<std::string> idb;
    for (const Rule& r : program.rules) {
      if (!r.IsFact()) idb.insert(r.head.predicate);
    }
    for (const Rule& r : rules) {
      for (const Atom& a : r.body) {
        if (a.predicate != target && idb.count(a.predicate) != 0) {
          return Status::InvalidArgument(
              "body predicate '" + a.predicate +
              "' is an IDB predicate; the paper's analysis assumes all "
              "nonrecursive predicates are EDB predicates (§2)");
        }
      }
    }
  }

  // Common head variables: take the first rule's head names.
  for (const Term& t : rules.front().head.args) {
    def.head_vars.push_back(t.text());
  }

  std::set<std::string> used_names;
  int index = 0;
  for (const Rule& r : rules) {
    Rule std_rule = Standardize(r, def.head_vars, &used_names, index++);
    if (IsRecursiveRule(std_rule, target)) {
      def.recursive_rules.push_back(std::move(std_rule));
    } else {
      def.exit_rules.push_back(std::move(std_rule));
    }
  }
  return def;
}

}  // namespace dire::ast
