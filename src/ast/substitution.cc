#include "ast/substitution.h"

namespace dire::ast {

Term Substitution::Apply(const Term& t) const {
  if (!t.IsVariable()) return t;
  auto it = map_.find(t.text());
  if (it == map_.end()) return t;
  return it->second;
}

Atom Substitution::Apply(const Atom& a) const {
  Atom out;
  out.predicate = a.predicate;
  out.negated = a.negated;
  out.args.reserve(a.args.size());
  for (const Term& t : a.args) out.args.push_back(Apply(t));
  return out;
}

Rule Substitution::Apply(const Rule& r) const {
  Rule out;
  out.head = Apply(r.head);
  out.body.reserve(r.body.size());
  for (const Atom& a : r.body) out.body.push_back(Apply(a));
  return out;
}

std::string Substitution::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [var, term] : map_) {
    if (!first) out += ", ";
    first = false;
    out += var;
    out += "->";
    out += term.ToString();
  }
  out += "}";
  return out;
}

Atom RenameVariables(const Atom& a, const std::string& suffix) {
  Atom out;
  out.predicate = a.predicate;
  out.negated = a.negated;
  out.args.reserve(a.args.size());
  for (const Term& t : a.args) {
    out.args.push_back(t.IsVariable() ? Term::Var(t.text() + suffix) : t);
  }
  return out;
}

Rule RenameVariables(const Rule& r, const std::string& suffix) {
  Rule out;
  out.head = RenameVariables(r.head, suffix);
  out.body.reserve(r.body.size());
  for (const Atom& a : r.body) out.body.push_back(RenameVariables(a, suffix));
  return out;
}

}  // namespace dire::ast
