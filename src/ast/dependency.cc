#include "ast/dependency.h"

#include <algorithm>
#include <functional>

namespace dire::ast {

DependencyGraph::DependencyGraph(const Program& program) {
  for (const Rule& r : program.rules) {
    edges_[r.head.predicate];  // Ensure head nodes exist even for facts.
    for (const Atom& a : r.body) {
      edges_[r.head.predicate].insert(a.predicate);
      edges_[a.predicate];  // Body-only (EDB) predicates are sinks.
      if (a.negated) negative_edges_.emplace(r.head.predicate, a.predicate);
    }
  }
  ComputeSccs();
  for (const auto& [head, body] : negative_edges_) {
    if (stratum_of_.at(head) == stratum_of_.at(body)) {
      stratification_violation_ =
          "predicate '" + head + "' depends negatively on '" + body +
          "' within the same recursive component";
      break;
    }
  }
}

const std::set<std::string>& DependencyGraph::DependenciesOf(
    const std::string& p) const {
  auto it = edges_.find(p);
  return it == edges_.end() ? empty_ : it->second;
}

bool DependencyGraph::IsRecursive(const std::string& p) const {
  return recursive_.count(p) != 0;
}

int DependencyGraph::StratumOf(const std::string& p) const {
  auto it = stratum_of_.find(p);
  return it == stratum_of_.end() ? -1 : it->second;
}

std::set<std::string> DependencyGraph::Predicates() const {
  std::set<std::string> out;
  for (const auto& [p, deps] : edges_) out.insert(p);
  return out;
}

void DependencyGraph::ComputeSccs() {
  // Iterative Tarjan SCC. Components are emitted in reverse-topological
  // order (dependencies first), which is exactly evaluation order.
  std::map<std::string, int> index;
  std::map<std::string, int> lowlink;
  std::map<std::string, bool> on_stack;
  std::vector<std::string> stack;
  int next_index = 0;

  struct Frame {
    std::string node;
    std::set<std::string>::const_iterator next;
    std::set<std::string>::const_iterator end;
  };

  for (const auto& [start, start_deps] : edges_) {
    if (index.count(start) != 0) continue;
    std::vector<Frame> frames;
    auto push_node = [&](const std::string& v) {
      index[v] = lowlink[v] = next_index++;
      stack.push_back(v);
      on_stack[v] = true;
      const auto& deps = edges_.at(v);
      frames.push_back(Frame{v, deps.begin(), deps.end()});
    };
    push_node(start);
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.next != f.end) {
        const std::string& w = *f.next++;
        if (index.count(w) == 0) {
          push_node(w);
        } else if (on_stack[w]) {
          lowlink[f.node] = std::min(lowlink[f.node], index[w]);
        }
      } else {
        std::string v = f.node;
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().node] =
              std::min(lowlink[frames.back().node], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          std::vector<std::string> component;
          while (true) {
            std::string w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            component.push_back(w);
            if (w == v) break;
          }
          std::sort(component.begin(), component.end());
          int id = static_cast<int>(strata_.size());
          for (const std::string& m : component) stratum_of_[m] = id;
          strata_.push_back(std::move(component));
        }
      }
    }
  }

  // A predicate is recursive if its SCC has >1 member or it has a self-loop.
  for (const auto& component : strata_) {
    for (const std::string& p : component) {
      if (component.size() > 1 || edges_.at(p).count(p) != 0) {
        recursive_.insert(p);
      }
    }
  }
}

}  // namespace dire::ast
