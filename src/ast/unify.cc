#include "ast/unify.h"

#include <map>
#include <string>

namespace dire::ast {
namespace {

// Union-find over term equivalence classes, with class representatives
// preferring constants (so a class containing a constant resolves to it, and
// two distinct constants in one class signal a clash).
class TermUnion {
 public:
  // Returns false on constant clash.
  bool Merge(const Term& a, const Term& b) {
    Term ra = Find(a);
    Term rb = Find(b);
    if (ra == rb) return true;
    if (ra.IsConstant() && rb.IsConstant()) return false;
    if (ra.IsConstant()) {
      parent_[Key(rb)] = ra;
    } else {
      parent_[Key(ra)] = rb;
    }
    return true;
  }

  Term Find(const Term& t) {
    auto it = parent_.find(Key(t));
    if (it == parent_.end()) return t;
    Term root = Find(it->second);
    parent_[Key(t)] = root;  // Path compression.
    return root;
  }

 private:
  static std::string Key(const Term& t) {
    return (t.IsVariable() ? "v:" : "c:") + t.text();
  }

  std::map<std::string, Term> parent_;
};

}  // namespace

std::optional<Substitution> Unify(const Atom& a, const Atom& b) {
  if (a.predicate != b.predicate || a.arity() != b.arity()) {
    return std::nullopt;
  }
  TermUnion uf;
  for (size_t i = 0; i < a.args.size(); ++i) {
    if (!uf.Merge(a.args[i], b.args[i])) return std::nullopt;
  }
  Substitution s;
  auto bind_vars = [&](const Atom& atom) {
    for (const Term& t : atom.args) {
      if (t.IsVariable() && !s.Contains(t.text())) {
        Term root = uf.Find(t);
        if (root != t) s.Bind(t.text(), root);
      }
    }
  };
  bind_vars(a);
  bind_vars(b);
  return s;
}

std::optional<Substitution> Match(const Atom& pattern, const Atom& target) {
  if (pattern.predicate != target.predicate ||
      pattern.arity() != target.arity()) {
    return std::nullopt;
  }
  Substitution s;
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    const Term& p = pattern.args[i];
    const Term& t = target.args[i];
    if (p.IsConstant()) {
      if (p != t) return std::nullopt;
      continue;
    }
    if (auto bound = s.Lookup(p.text())) {
      if (*bound != t) return std::nullopt;
    } else {
      s.Bind(p.text(), t);
    }
  }
  return s;
}

}  // namespace dire::ast
