#include "core/graph_view.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace dire::core {
namespace {

int64_t Gcd(int64_t a, int64_t b) {
  a = a < 0 ? -a : a;
  b = b < 0 ? -b : b;
  while (b != 0) {
    int64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

bool WalkWeights::ContainsValue(int64_t w) const {
  if (!connected) return false;
  if (gcd == 0) return w == base;
  return (w - base) % gcd == 0;
}

bool WalkWeights::ContainsPositive() const {
  if (!connected) return false;
  if (gcd != 0) return true;  // Unbounded in both directions.
  return base > 0;
}

bool Intersects(const WalkWeights& a, const WalkWeights& b) {
  if (!a.connected || !b.connected) return false;
  // base_a + k*g_a == base_b + m*g_b has a solution iff
  // gcd(g_a, g_b) divides base_b - base_a (with 0-gcds meaning fixed value).
  int64_t g = Gcd(a.gcd, b.gcd);
  int64_t diff = b.base - a.base;
  if (g == 0) return diff == 0;
  return diff % g == 0;
}

namespace {

// Extended gcd: returns g = gcd(a, b) and x, y with a*x + b*y == g.
int64_t ExtGcd(int64_t a, int64_t b, int64_t* x, int64_t* y) {
  if (b == 0) {
    *x = a >= 0 ? 1 : -1;
    *y = 0;
    return a >= 0 ? a : -a;
  }
  int64_t x1 = 0;
  int64_t y1 = 0;
  int64_t g = ExtGcd(b, a % b, &x1, &y1);
  *x = y1;
  *y = x1 - (a / b) * y1;
  return g;
}

}  // namespace

WalkWeights IntersectCosets(const WalkWeights& a, const WalkWeights& b) {
  WalkWeights out;
  if (!a.connected || !b.connected) return out;
  if (a.gcd == 0 && b.gcd == 0) {
    out.connected = a.base == b.base;
    out.base = a.base;
    out.gcd = 0;
    return out;
  }
  if (a.gcd == 0) {
    out.connected = b.ContainsValue(a.base);
    out.base = a.base;
    out.gcd = 0;
    return out;
  }
  if (b.gcd == 0) {
    out.connected = a.ContainsValue(b.base);
    out.base = b.base;
    out.gcd = 0;
    return out;
  }
  // Solve base_a + k*g_a == base_b (mod g_b) via CRT.
  int64_t x = 0;
  int64_t y = 0;
  int64_t g = ExtGcd(a.gcd, b.gcd, &x, &y);
  int64_t diff = b.base - a.base;
  if (diff % g != 0) return out;  // Empty.
  int64_t lcm = a.gcd / g * b.gcd;
  // One solution: base_a + (diff/g)*x*g_a, then reduce modulo lcm.
  __int128 sol = static_cast<__int128>(a.base) +
                 static_cast<__int128>(diff / g) * x * a.gcd;
  int64_t l = lcm < 0 ? -lcm : lcm;
  int64_t value = static_cast<int64_t>(((sol % l) + l) % l);
  out.connected = true;
  out.base = value;
  out.gcd = l;
  return out;
}

WalkWeights SumOf(const WalkWeights& a, const WalkWeights& b) {
  WalkWeights out;
  out.connected = a.connected && b.connected;
  if (!out.connected) return out;
  out.base = a.base + b.base;
  out.gcd = Gcd(a.gcd, b.gcd);
  return out;
}

GraphView::GraphView(const AvGraph& g, std::vector<bool> include,
                     bool augmented)
    : graph_(g), include_(std::move(include)) {
  include_.resize(g.nodes().size(), false);
  adj_.resize(g.nodes().size());
  for (size_t e = 0; e < g.edges().size(); ++e) {
    const AvGraph::Edge& edge = g.edges()[e];
    if (!augmented && edge.kind == AvGraph::EdgeKind::kPredicate) continue;
    if (!include_[static_cast<size_t>(edge.from)] ||
        !include_[static_cast<size_t>(edge.to)]) {
      continue;
    }
    int weight = edge.kind == AvGraph::EdgeKind::kUnification ? 1 : 0;
    int idx = static_cast<int>(edges_.size());
    edges_.push_back(ViewEdge{static_cast<int>(e), edge.from, edge.to,
                              weight});
    view_edges_.push_back(static_cast<int>(e));
    adj_[static_cast<size_t>(edge.from)].emplace_back(idx, +1);
    adj_[static_cast<size_t>(edge.to)].emplace_back(idx, -1);
  }
  ComputeComponents();
  ComputeBiconnectivity();
}

GraphView GraphView::All(const AvGraph& g, bool augmented) {
  return GraphView(g, std::vector<bool>(g.nodes().size(), true), augmented);
}

void GraphView::ComputeComponents() {
  size_t n = include_.size();
  component_.assign(n, -1);
  potential_.assign(n, 0);

  for (size_t start = 0; start < n; ++start) {
    if (!include_[start] || component_[start] != -1) continue;
    int comp = static_cast<int>(component_nodes_.size());
    component_nodes_.emplace_back();
    component_has_cycle_.push_back(false);
    component_gcd_.push_back(0);

    // Iterative DFS building a spanning tree; every non-tree edge closes a
    // fundamental cycle whose weight feeds the component gcd.
    std::vector<std::pair<int, int>> stack;  // (node, incoming view-edge idx)
    component_[start] = comp;
    component_nodes_.back().push_back(static_cast<int>(start));
    stack.emplace_back(static_cast<int>(start), -1);
    std::vector<bool> edge_used(edges_.size(), false);
    while (!stack.empty()) {
      auto [u, via] = stack.back();
      stack.pop_back();
      for (const auto& [edge_idx, dir] : adj_[static_cast<size_t>(u)]) {
        if (edge_used[static_cast<size_t>(edge_idx)]) continue;
        edge_used[static_cast<size_t>(edge_idx)] = true;
        const ViewEdge& e = edges_[static_cast<size_t>(edge_idx)];
        int v = dir > 0 ? e.v : e.u;
        int64_t w = dir > 0 ? e.weight : -e.weight;
        if (component_[static_cast<size_t>(v)] == -1) {
          component_[static_cast<size_t>(v)] = comp;
          component_nodes_.back().push_back(v);
          potential_[static_cast<size_t>(v)] =
              potential_[static_cast<size_t>(u)] + w;
          stack.emplace_back(v, edge_idx);
        } else {
          // Non-tree edge: fundamental cycle weight.
          component_has_cycle_.back() = true;
          int64_t cycle = potential_[static_cast<size_t>(u)] + w -
                          potential_[static_cast<size_t>(v)];
          component_gcd_.back() = Gcd(component_gcd_.back(), cycle);
        }
      }
      (void)via;
    }
  }
}

WalkWeights GraphView::Weights(int u, int v) const {
  WalkWeights out;
  int cu = component_[static_cast<size_t>(u)];
  int cv = component_[static_cast<size_t>(v)];
  if (cu == -1 || cu != cv) return out;
  out.connected = true;
  out.base = potential_[static_cast<size_t>(v)] -
             potential_[static_cast<size_t>(u)];
  out.gcd = component_gcd_[static_cast<size_t>(cu)];
  return out;
}

void GraphView::ComputeBiconnectivity() {
  size_t n = include_.size();
  on_cycle_.assign(n, false);
  on_nonzero_cycle_.assign(n, false);

  // Standard lowpoint biconnectivity with an edge stack, iterative to avoid
  // deep recursion. Parallel edges are distinct edges, so a doubled edge
  // forms a two-edge biconnected component (a cycle), as required by the
  // paper's Figure 2 (the t2 - Y - t2 cycle).
  std::vector<int> disc(n, -1);
  std::vector<int> low(n, -1);
  std::vector<int> edge_stack;
  int timer = 0;

  struct Frame {
    int node;
    int parent_edge;
    size_t next_adj = 0;
  };

  auto process_component = [&](const std::vector<int>& comp_edges) {
    if (comp_edges.size() < 2) return;  // A bridge is not a cycle.
    // Collect the component's nodes and test for a nonzero-weight cycle by
    // checking fundamental cycles of the component's own spanning tree.
    std::map<int, int64_t> pot;
    std::map<int, std::vector<std::pair<int, int>>> local_adj;
    for (int idx : comp_edges) {
      const ViewEdge& e = edges_[static_cast<size_t>(idx)];
      local_adj[e.u].emplace_back(idx, +1);
      local_adj[e.v].emplace_back(idx, -1);
    }
    bool nonzero = false;
    std::vector<bool> used(edges_.size(), false);
    for (const auto& [root, unused] : local_adj) {
      if (pot.count(root) != 0) continue;
      pot[root] = 0;
      std::vector<int> stack{root};
      while (!stack.empty()) {
        int u = stack.back();
        stack.pop_back();
        for (const auto& [idx, dir] : local_adj[u]) {
          if (used[static_cast<size_t>(idx)]) continue;
          used[static_cast<size_t>(idx)] = true;
          const ViewEdge& e = edges_[static_cast<size_t>(idx)];
          int v = dir > 0 ? e.v : e.u;
          int64_t w = dir > 0 ? e.weight : -e.weight;
          auto it = pot.find(v);
          if (it == pot.end()) {
            pot[v] = pot[u] + w;
            stack.push_back(v);
          } else if (pot[u] + w != it->second) {
            nonzero = true;
          }
        }
      }
    }
    for (const auto& [node, unused] : local_adj) {
      on_cycle_[static_cast<size_t>(node)] = true;
      if (nonzero) on_nonzero_cycle_[static_cast<size_t>(node)] = true;
    }
  };

  for (size_t start = 0; start < n; ++start) {
    if (!include_[start] || disc[start] != -1) continue;
    std::vector<Frame> frames;
    disc[start] = low[start] = timer++;
    frames.push_back(Frame{static_cast<int>(start), -1});
    while (!frames.empty()) {
      Frame& f = frames.back();
      size_t u = static_cast<size_t>(f.node);
      if (f.next_adj < adj_[u].size()) {
        auto [edge_idx, dir] = adj_[u][f.next_adj++];
        if (edge_idx == f.parent_edge) continue;
        const ViewEdge& e = edges_[static_cast<size_t>(edge_idx)];
        int v = dir > 0 ? e.v : e.u;
        size_t sv = static_cast<size_t>(v);
        if (disc[sv] == -1) {
          edge_stack.push_back(edge_idx);
          disc[sv] = low[sv] = timer++;
          frames.push_back(Frame{v, edge_idx});
        } else if (disc[sv] < disc[u]) {
          // Back edge.
          edge_stack.push_back(edge_idx);
          low[u] = std::min(low[u], disc[sv]);
        }
      } else {
        int child_edge = f.parent_edge;
        int child = f.node;
        frames.pop_back();
        if (frames.empty()) break;
        Frame& parent = frames.back();
        size_t pu = static_cast<size_t>(parent.node);
        low[pu] = std::min(low[pu], low[static_cast<size_t>(child)]);
        if (low[static_cast<size_t>(child)] >= disc[pu]) {
          // parent is an articulation point (or root): pop one component.
          std::vector<int> comp;
          while (!edge_stack.empty()) {
            int idx = edge_stack.back();
            edge_stack.pop_back();
            comp.push_back(idx);
            if (idx == child_edge) break;
          }
          process_component(comp);
        }
      }
    }
    edge_stack.clear();
  }
}

}  // namespace dire::core
