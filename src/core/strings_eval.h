#ifndef DIRE_CORE_STRINGS_EVAL_H_
#define DIRE_CORE_STRINGS_EVAL_H_

#include "ast/classify.h"
#include "base/result.h"
#include "core/expansion.h"
#include "storage/database.h"

namespace dire::core {

struct StringEvalStats {
  int levels = 0;        // Expansion levels evaluated.
  size_t strings = 0;    // Conjunctive queries executed.
  size_t tuples = 0;     // New tuples inserted into the target relation.
  bool converged = false;
};

struct StringEvalOptions {
  // Hard cap on levels.
  int max_levels = 64;
  // Stop after this many consecutive levels that derived nothing new. This
  // is the naive termination test the paper's §6 calls "hopelessly
  // inefficient" as an evaluation strategy; it is implemented as the
  // baseline for the CLM-STRWISE experiment and for cross-checking the
  // fixpoint evaluator in tests.
  int quiet_levels = 2;
  // Minimize (compute the core of) each string before executing it. On
  // Example 6.1 this is exactly Theorem 6.1's effect in the paper's own
  // evaluation model: the k copies of the unconnected b predicate fold into
  // one, so each string joins b once instead of once per level.
  bool minimize_strings = false;
  ExpansionEnumerator::Options expansion;
};

// Evaluates the recursive definition string-at-a-time: materializes each
// expansion string as a nonrecursive rule and runs it against `db`,
// re-evaluating longer and longer conjunctions from scratch (§6's strawman).
// Results accumulate in the relation named def.target.
Result<StringEvalStats> EvaluateViaExpansion(
    const ast::RecursiveDefinition& def, storage::Database* db,
    const StringEvalOptions& options = {});

}  // namespace dire::core

#endif  // DIRE_CORE_STRINGS_EVAL_H_
