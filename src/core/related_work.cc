#include "core/related_work.h"

#include <map>
#include <set>
#include <vector>

#include "base/string_util.h"

namespace dire::core {
namespace {

// Body atoms in which each variable occurs.
std::map<std::string, std::set<size_t>> AtomsOfVariables(
    const ast::Rule& rule) {
  std::map<std::string, std::set<size_t>> out;
  for (size_t i = 0; i < rule.body.size(); ++i) {
    for (const ast::Term& t : rule.body[i].args) {
      if (t.IsVariable()) out[t.text()].insert(i);
    }
  }
  return out;
}

}  // namespace

Result<MinkerNicolasResult> TestMinkerNicolas(
    const ast::RecursiveDefinition& def) {
  if (def.recursive_rules.size() != 1) {
    return Status::InvalidArgument(
        "the Minker–Nicolas comparator handles one recursive rule");
  }
  const ast::Rule& rule = def.recursive_rules.front();
  MinkerNicolasResult out;

  if (!ast::IsLinearRecursive(rule, def.target)) {
    out.reason = "nonlinear recursion (outside this implementation's scope)";
    return out;
  }

  std::set<std::string> nondist = rule.NondistinguishedVariables();

  // Rule 1: no nondistinguished variable shared between predicates.
  for (const auto& [var, atoms] : AtomsOfVariables(rule)) {
    if (nondist.count(var) != 0 && atoms.size() > 1) {
      out.reason = "nondistinguished variable '" + var +
                   "' is shared between body predicates";
      return out;
    }
  }

  // Rule 2: no permutation of distinguished variables, except in atoms
  // containing no nondistinguished variable. We check the recursive atom
  // (where "position" aligns with the head): if it carries any
  // nondistinguished variable, every distinguished variable in it must sit
  // at its own head position.
  for (const ast::Atom& atom : rule.body) {
    if (atom.predicate != def.target) continue;
    bool has_nondist = false;
    for (const ast::Term& t : atom.args) {
      if (t.IsVariable() && nondist.count(t.text()) != 0) has_nondist = true;
    }
    if (!has_nondist) continue;
    for (size_t p = 0; p < atom.args.size(); ++p) {
      const ast::Term& t = atom.args[p];
      if (t.IsVariable() && nondist.count(t.text()) == 0 &&
          t.text() != def.head_vars[p]) {
        out.reason = StrFormat(
            "distinguished variable '%s' is permuted into position %zu of "
            "the recursive atom, which carries nondistinguished variables",
            t.text().c_str(), p + 1);
        return out;
      }
    }
  }

  out.in_class = true;
  out.independent = true;
  out.reason =
      "in the Minker–Nicolas class: every resolution branch terminates by "
      "subsumption, so the rule is strongly data independent";
  return out;
}

Result<IoannidisResult> TestIoannidis(const ast::RecursiveDefinition& def) {
  if (def.recursive_rules.size() != 1) {
    return Status::InvalidArgument(
        "the Ioannidis comparator handles one recursive rule");
  }
  const ast::Rule& rule = def.recursive_rules.front();
  if (!ast::IsLinearRecursive(rule, def.target)) {
    return Status::InvalidArgument(
        "the Ioannidis comparator requires a linear recursive rule");
  }

  IoannidisResult out;
  const ast::Atom* recursive_atom = nullptr;
  for (const ast::Atom& a : rule.body) {
    if (a.predicate == def.target) recursive_atom = &a;
  }

  // Class check: no nonempty subset S of positions of the recursive atom
  // such that the multiset of its variables at S equals the multiset of head
  // variables at S.
  size_t arity = def.arity;
  bool permutation_found = false;
  for (size_t mask = 1; mask < (1u << arity); ++mask) {
    std::multiset<std::string> body_side;
    std::multiset<std::string> head_side;
    bool all_vars = true;
    for (size_t p = 0; p < arity; ++p) {
      if ((mask & (1u << p)) == 0) continue;
      const ast::Term& t = recursive_atom->args[p];
      if (!t.IsVariable()) {
        all_vars = false;
        break;
      }
      body_side.insert(t.text());
      head_side.insert(def.head_vars[p]);
    }
    if (all_vars && body_side == head_side) {
      permutation_found = true;
      break;
    }
  }
  out.in_class = !permutation_found;

  // Alpha-graph: variable nodes only.
  //   * weight-0 edges between variables co-occurring in a nonrecursive atom
  //   * weight-1 edges from the variable at recursive-atom position p to the
  //     head variable of position p (possibly a self loop).
  struct AlphaEdge {
    std::string u;
    std::string v;
    int weight;  // Traversed u -> v.
  };
  std::vector<AlphaEdge> edges;
  for (const ast::Atom& atom : rule.body) {
    if (atom.predicate == def.target) {
      for (size_t p = 0; p < atom.args.size(); ++p) {
        edges.push_back(
            AlphaEdge{atom.args[p].text(), def.head_vars[p], 1});
      }
    } else {
      std::vector<std::string> vars = atom.Variables();
      for (size_t i = 0; i < vars.size(); ++i) {
        for (size_t j = i + 1; j < vars.size(); ++j) {
          edges.push_back(AlphaEdge{vars[i], vars[j], 0});
        }
      }
    }
  }

  std::set<std::string> nondist = rule.NondistinguishedVariables();

  // Nodes reachable from some nondistinguished variable.
  std::map<std::string, std::vector<std::pair<size_t, int>>> adj;
  for (size_t e = 0; e < edges.size(); ++e) {
    adj[edges[e].u].emplace_back(e, +1);
    adj[edges[e].v].emplace_back(e, -1);
  }
  std::set<std::string> reachable;
  std::vector<std::string> stack(nondist.begin(), nondist.end());
  for (const std::string& w : stack) reachable.insert(w);
  while (!stack.empty()) {
    std::string u = stack.back();
    stack.pop_back();
    for (const auto& [e, dir] : adj[u]) {
      const std::string& v = dir > 0 ? edges[e].v : edges[e].u;
      if (reachable.insert(v).second) stack.push_back(v);
    }
  }

  // Potential-conflict search (Ioannidis Algorithm 6.1 / the paper's
  // phase 2) restricted to the reachable nodes, self loops included.
  std::map<std::string, int64_t> pot;
  bool conflict = false;
  for (const std::string& start : reachable) {
    if (pot.count(start) != 0) continue;
    pot[start] = 0;
    std::vector<std::string> dfs{start};
    std::set<size_t> used;
    while (!dfs.empty() && !conflict) {
      std::string u = dfs.back();
      dfs.pop_back();
      for (const auto& [e, dir] : adj[u]) {
        if (reachable.count(edges[e].u) == 0 ||
            reachable.count(edges[e].v) == 0) {
          continue;
        }
        if (!used.insert(e).second) continue;
        const std::string& v = dir > 0 ? edges[e].v : edges[e].u;
        int64_t w = dir > 0 ? edges[e].weight : -edges[e].weight;
        if (edges[e].u == edges[e].v && edges[e].weight != 0) {
          conflict = true;  // Nonzero self loop.
          break;
        }
        auto it = pot.find(v);
        if (it == pot.end()) {
          pot[v] = pot[u] + w;
          dfs.push_back(v);
        } else if (pot[u] + w != it->second) {
          conflict = true;
          break;
        }
      }
    }
    if (conflict) break;
  }

  out.alpha_graph_independent = !conflict;
  out.reason = out.in_class
                   ? (conflict ? "alpha-graph cycle of nonzero weight "
                                 "reachable from a nondistinguished variable"
                               : "no nonzero alpha-graph cycle")
                   : "a subset of recursive-atom positions permutes the head "
                     "variables; the alpha-graph verdict is advisory only";
  return out;
}

}  // namespace dire::core
