#ifndef DIRE_CORE_CHAIN_H_
#define DIRE_CORE_CHAIN_H_

#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "base/result.h"
#include "core/av_graph.h"

namespace dire::core {

// A witness chain generating path: a simple cycle of nonzero weight in the
// augmented A/V graph whose argument positions are reachable from a
// nondistinguished variable (Def 4.1 / Def 5.2).
struct ChainWitness {
  std::vector<int> nodes;   // Cycle nodes in traversal order.
  std::vector<int> edges;   // A/V edge ids, edges[i] joins nodes[i],nodes[i+1].
  int64_t weight = 0;

  std::string ToString(const AvGraph& g) const;
};

// Identifies a body atom: (rule index, atom index) as used by AvGraph.
using AtomRef = std::pair<int, int>;

struct ChainAnalysis {
  // Whether the augmented A/V graph contains a chain generating path.
  bool has_chain_generating_path = false;
  std::optional<ChainWitness> witness;

  // True when the result is exact: the single-rule two-phase algorithm ran,
  // or the multi-rule cycle enumeration completed within its cap. When
  // false, has_chain_generating_path == true conservatively.
  bool exact = true;

  // Phase-1 survivors (single-rule): nodes reachable, without predicate
  // edges, from a nondistinguished variable (indexed by A/V node id).
  std::vector<bool> surviving;

  // Nonrecursive body atoms with an argument position on some chain
  // generating path.
  std::set<AtomRef> atoms_on_chains;

  // Def 6.1 closure: nonrecursive atoms connected to an unbounded chain
  // (share a nondistinguished variable, transitively, with a chain atom).
  // Atoms of recursive rules NOT in this set are hoistable (Theorem 6.1).
  std::set<AtomRef> chain_connected_atoms;

  std::string note;
};

// Runs chain-generating-path detection on the recursive rules of `g`.
// With one recursive rule this is the paper's two-phase linear-time
// algorithm (§4.2): phase 1 removes the connected components of the
// non-augmented graph that contain cycles (whose argument positions always
// hold distinguished variables, Lemmas 3.1/3.2); phase 2 looks for a node of
// the augmented survivor graph reachable from a nondistinguished variable at
// two different path weights. With several rules it enumerates simple
// cycles and applies the consistency conditions of Def 5.1/5.2 (checking
// rule assignments modulo the cycle weight); the feeder-path consistency
// check over-approximates, which can only make the test more conservative
// (Theorem 5.1 remains a sound sufficient condition for independence).
Result<ChainAnalysis> DetectChains(const AvGraph& g);

}  // namespace dire::core

#endif  // DIRE_CORE_CHAIN_H_
