#include "core/rewrite.h"

#include "base/string_util.h"
#include "cq/containment.h"

namespace dire::core {

Result<RewriteResult> BoundedRewrite(const ast::RecursiveDefinition& def,
                                     const RewriteOptions& options) {
  ExpansionEnumerator::Options expansion = options.expansion;
  if (expansion.guard == nullptr) expansion.guard = options.guard;
  DIRE_ASSIGN_OR_RETURN(ExpansionEnumerator levels,
                        ExpansionEnumerator::Create(def, expansion));

  RewriteResult result;
  std::vector<cq::ConjunctiveQuery> kept;
  int last_new_level = -1;

  for (int level = 0; level <= options.max_depth; ++level) {
    if (options.guard != nullptr) {
      // The containment checks below are NP-hard in the query size, so the
      // guard is consulted per level, before and after enumeration.
      DIRE_RETURN_IF_ERROR(options.guard->Check());
    }
    auto level_strings = levels.NextLevel();
    if (!level_strings.ok()) {
      // A guard trip is a hard stop; an expansion blow-up against the
      // static cap (multi-rule) is the ordinary inconclusive answer.
      if (level_strings.status().code() == StatusCode::kResourceExhausted ||
          level_strings.status().code() == StatusCode::kCancelled) {
        return level_strings.status();
      }
      result.outcome = RewriteResult::Outcome::kInconclusive;
      result.note = level_strings.status().ToString();
      return result;
    }
    for (const ExpansionString& s : *level_strings) {
      ++result.strings_seen;
      if (cq::UnionContains(kept, s.query)) continue;
      kept.push_back(s.query);
      last_new_level = level;
    }
    if (last_new_level >= 0 &&
        level - last_new_level >= options.verification_margin) {
      result.outcome = RewriteResult::Outcome::kBounded;
      result.bound = last_new_level;
      break;
    }
  }

  if (result.outcome != RewriteResult::Outcome::kBounded) {
    result.note = StrFormat(
        "no %d consecutive redundant levels within depth %d",
        options.verification_margin, options.max_depth);
    return result;
  }

  for (const cq::ConjunctiveQuery& q : kept) {
    cq::ConjunctiveQuery emit = options.minimize_queries ? cq::Minimize(q) : q;
    result.rewritten.rules.push_back(emit.ToRule(def.target));
  }
  result.strings_kept = kept.size();
  result.note = StrFormat(
      "bounded: every expansion string beyond level %d is contained in the "
      "union of the %zu kept strings",
      result.bound, result.strings_kept);
  return result;
}

Result<int> PlanIterationBound(const ast::RecursiveDefinition& def,
                               const RewriteOptions& options) {
  DIRE_ASSIGN_OR_RETURN(RewriteResult r, BoundedRewrite(def, options));
  if (r.outcome != RewriteResult::Outcome::kBounded) {
    return Status::Inconclusive(
        "definition not shown bounded within the rewrite budget: " + r.note);
  }
  // Bottom-up round k derives the strings of depth k-1, so covering depths
  // 0..bound takes bound+1 rounds.
  return r.bound + 1;
}

}  // namespace dire::core
