#include "core/chain.h"

#include <algorithm>
#include <map>

#include "base/string_util.h"
#include "core/graph_view.h"

namespace dire::core {
namespace {

// Weight of traversing `edge_id` starting from node `from`.
int StepWeight(const AvGraph& g, int edge_id, int from) {
  const AvGraph::Edge& e = g.edges()[static_cast<size_t>(edge_id)];
  if (e.kind != AvGraph::EdgeKind::kUnification) return 0;
  return e.from == from ? +1 : -1;
}

// Nodes participating in the recursive rules: their argument nodes plus
// every variable node incident to one of them.
std::vector<bool> RecursiveRuleFilter(const AvGraph& g) {
  std::vector<bool> include(g.nodes().size(), false);
  for (size_t i = 0; i < g.nodes().size(); ++i) {
    const AvGraph::Node& n = g.nodes()[i];
    if (n.kind == AvGraph::NodeKind::kArgument && !n.in_exit_rule) {
      include[i] = true;
    }
  }
  for (const AvGraph::Edge& e : g.edges()) {
    if (e.kind == AvGraph::EdgeKind::kPredicate) continue;
    if (include[static_cast<size_t>(e.from)]) {
      include[static_cast<size_t>(e.to)] = true;
    }
  }
  return include;
}

bool IsNondistinguishedVar(const AvGraph& g, int v) {
  const AvGraph::Node& n = g.nodes()[static_cast<size_t>(v)];
  return n.kind == AvGraph::NodeKind::kVariable && !n.distinguished;
}

// Finds a simple cycle of nonzero weight within `include` (+augmented
// edges), as a witness for phase 2. Returns nullopt if none exists.
std::optional<ChainWitness> FindNonzeroCycle(const AvGraph& g,
                                             const std::vector<bool>& include) {
  size_t n = g.nodes().size();
  std::vector<bool> visited(n, false);
  std::vector<int64_t> pot(n, 0);
  std::vector<int> parent(n, -1);
  std::vector<int> parent_edge(n, -1);

  for (size_t start = 0; start < n; ++start) {
    if (!include[start] || visited[start]) continue;
    std::vector<int> stack{static_cast<int>(start)};
    visited[start] = true;
    std::vector<bool> edge_seen(g.edges().size(), false);
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      for (const AvGraph::Step& s : g.Adjacent(u, /*augmented=*/true)) {
        if (!include[static_cast<size_t>(s.neighbor)]) continue;
        if (edge_seen[static_cast<size_t>(s.edge)]) continue;
        edge_seen[static_cast<size_t>(s.edge)] = true;
        int v = s.neighbor;
        if (!visited[static_cast<size_t>(v)]) {
          visited[static_cast<size_t>(v)] = true;
          pot[static_cast<size_t>(v)] = pot[static_cast<size_t>(u)] + s.weight;
          parent[static_cast<size_t>(v)] = u;
          parent_edge[static_cast<size_t>(v)] = s.edge;
          stack.push_back(v);
          continue;
        }
        if (pot[static_cast<size_t>(u)] + s.weight ==
            pot[static_cast<size_t>(v)]) {
          continue;
        }
        // Conflict: the tree paths to u and v plus this edge close a cycle
        // of nonzero weight. Build v .. lca .. u, then the closing edge.
        auto path_to_root = [&](int x) {
          std::vector<int> path{x};
          while (parent[static_cast<size_t>(x)] != -1) {
            x = parent[static_cast<size_t>(x)];
            path.push_back(x);
          }
          return path;  // x .. root
        };
        std::vector<int> pu = path_to_root(u);
        std::vector<int> pv = path_to_root(v);
        // Strip the common tail (from the root side).
        while (pu.size() > 1 && pv.size() > 1 &&
               pu[pu.size() - 2] == pv[pv.size() - 2]) {
          pu.pop_back();
          pv.pop_back();
        }
        // pu: u .. lca ; pv: v .. lca (they share only the last node).
        ChainWitness w;
        // Nodes: v, ..., lca, ..., u  then close with edge (u,v).
        w.nodes.assign(pv.begin(), pv.end());
        for (size_t i = pu.size() - 1; i-- > 0;) {
          w.nodes.push_back(pu[i]);
        }
        for (size_t i = 0; i + 1 < w.nodes.size(); ++i) {
          int a = w.nodes[i];
          int b = w.nodes[i + 1];
          // Consecutive cycle nodes are parent/child in the DFS tree.
          w.edges.push_back(parent[static_cast<size_t>(a)] == b
                                ? parent_edge[static_cast<size_t>(a)]
                                : parent_edge[static_cast<size_t>(b)]);
        }
        w.edges.push_back(s.edge);
        int64_t total = 0;
        int at = w.nodes[0];
        for (int e : w.edges) {
          total += StepWeight(g, e, at);
          const AvGraph::Edge& edge = g.edges()[static_cast<size_t>(e)];
          at = edge.from == at ? edge.to : edge.from;
        }
        w.weight = total;
        return w;
      }
    }
  }
  return std::nullopt;
}

}  // namespace

namespace {

// ---------------------------------------------------------------------------
// Shared post-processing: Def 6.1 chain connectivity.
// ---------------------------------------------------------------------------

// Builds the Def 6.1 closure. `core_view` is the non-augmented view over the
// recursive-rule nodes; two atoms share a nondistinguished variable (across
// iterations) when their argument nodes meet in a component that contains a
// nondistinguished variable node.
void ComputeChainConnectivity(const AvGraph& g, const GraphView& core_view,
                              ChainAnalysis* analysis) {
  // Components that carry nondistinguished variables.
  std::vector<bool> component_carries(
      static_cast<size_t>(core_view.num_components()), false);
  for (size_t v = 0; v < g.nodes().size(); ++v) {
    int c = core_view.Included(static_cast<int>(v))
                ? core_view.ComponentOf(static_cast<int>(v))
                : -1;
    if (c >= 0 && IsNondistinguishedVar(g, static_cast<int>(v))) {
      component_carries[static_cast<size_t>(c)] = true;
    }
  }

  // Atom -> components and component -> atoms (nonrecursive atoms only).
  std::map<AtomRef, std::set<int>> atom_components;
  std::map<int, std::set<AtomRef>> component_atoms;
  for (size_t v = 0; v < g.nodes().size(); ++v) {
    const AvGraph::Node& n = g.nodes()[v];
    if (n.kind != AvGraph::NodeKind::kArgument || n.in_exit_rule ||
        n.recursive_atom) {
      continue;
    }
    int c = core_view.Included(static_cast<int>(v))
                ? core_view.ComponentOf(static_cast<int>(v))
                : -1;
    if (c < 0 || !component_carries[static_cast<size_t>(c)]) continue;
    AtomRef ref{n.rule_index, n.atom_index};
    atom_components[ref].insert(c);
    component_atoms[c].insert(ref);
  }

  // BFS from the atoms on chain generating paths.
  std::vector<AtomRef> frontier(analysis->atoms_on_chains.begin(),
                                analysis->atoms_on_chains.end());
  analysis->chain_connected_atoms = analysis->atoms_on_chains;
  while (!frontier.empty()) {
    AtomRef a = frontier.back();
    frontier.pop_back();
    for (int c : atom_components[a]) {
      for (const AtomRef& b : component_atoms[c]) {
        if (analysis->chain_connected_atoms.insert(b).second) {
          frontier.push_back(b);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Single recursive rule: the exact two-phase linear algorithm of §4.2.
// ---------------------------------------------------------------------------

ChainAnalysis DetectSingleRule(const AvGraph& g) {
  ChainAnalysis analysis;
  std::vector<bool> filter = RecursiveRuleFilter(g);

  // Phase 1: components of the non-augmented graph; survivors are the
  // components with no cycle (equivalently, by Lemmas 3.1/3.2, the ones
  // containing a nondistinguished variable).
  GraphView core_view(g, filter, /*augmented=*/false);
  analysis.surviving.assign(g.nodes().size(), false);
  for (size_t v = 0; v < g.nodes().size(); ++v) {
    int c = core_view.Included(static_cast<int>(v))
                ? core_view.ComponentOf(static_cast<int>(v))
                : -1;
    if (c >= 0 && !core_view.ComponentHasCycle(c)) analysis.surviving[v] = true;
  }

  // Phase 2: a nonzero-weight cycle among the survivors of the augmented
  // graph witnesses a chain generating path.
  GraphView aug_view(g, analysis.surviving, /*augmented=*/true);
  for (int c = 0; c < aug_view.num_components(); ++c) {
    if (aug_view.ComponentCycleGcd(c) != 0) {
      analysis.has_chain_generating_path = true;
      break;
    }
  }
  if (analysis.has_chain_generating_path) {
    analysis.witness = FindNonzeroCycle(g, analysis.surviving);
    for (size_t v = 0; v < g.nodes().size(); ++v) {
      const AvGraph::Node& n = g.nodes()[v];
      if (n.kind == AvGraph::NodeKind::kArgument && !n.in_exit_rule &&
          !n.recursive_atom && aug_view.OnNonzeroCycle(static_cast<int>(v))) {
        analysis.atoms_on_chains.insert(AtomRef{n.rule_index, n.atom_index});
      }
    }
  }

  ComputeChainConnectivity(g, core_view, &analysis);
  return analysis;
}

// ---------------------------------------------------------------------------
// Multiple recursive rules (§5): simple-cycle enumeration with the
// consistency conditions of Def 5.1 / Def 5.2.
// ---------------------------------------------------------------------------

struct Cycle {
  std::vector<int> nodes;   // n0 .. nk, closing back to n0.
  std::vector<int> edges;   // edges[i] joins nodes[i] and nodes[i+1 mod k].
  int64_t weight = 0;
};

class CycleEnumerator {
 public:
  CycleEnumerator(const AvGraph& g, const std::vector<bool>& include,
                  size_t cap)
      : g_(g), include_(include), cap_(cap) {}

  // Enumerates simple cycles; returns false if the cap was hit.
  bool Run(std::vector<Cycle>* out) {
    out_ = out;
    size_t n = g_.nodes().size();
    for (size_t start = 0; start < n; ++start) {
      if (!include_[start]) continue;
      start_ = static_cast<int>(start);
      on_path_.assign(n, false);
      on_path_[start] = true;
      path_nodes_ = {start_};
      path_edges_.clear();
      path_weights_ = {0};
      if (!Extend(start_)) return false;
    }
    return true;
  }

 private:
  bool Extend(int u) {
    for (const AvGraph::Step& s : g_.Adjacent(u, /*augmented=*/true)) {
      int v = s.neighbor;
      if (!include_[static_cast<size_t>(v)] || v < start_) continue;
      if (!path_edges_.empty() && s.edge == path_edges_.back()) continue;
      if (std::find(path_edges_.begin(), path_edges_.end(), s.edge) !=
          path_edges_.end()) {
        continue;
      }
      if (v == start_ && path_edges_.size() >= 1) {
        // Close the cycle (needs at least 2 edges in total).
        Cycle c;
        c.nodes = path_nodes_;
        c.edges = path_edges_;
        c.edges.push_back(s.edge);
        c.weight = path_weights_.back() + s.weight;
        if (c.edges.size() >= 2 && !Seen(c)) {
          out_->push_back(std::move(c));
          if (out_->size() > cap_) return false;
        }
        continue;
      }
      if (on_path_[static_cast<size_t>(v)]) continue;
      on_path_[static_cast<size_t>(v)] = true;
      path_nodes_.push_back(v);
      path_edges_.push_back(s.edge);
      path_weights_.push_back(path_weights_.back() + s.weight);
      if (!Extend(v)) return false;
      on_path_[static_cast<size_t>(v)] = false;
      path_nodes_.pop_back();
      path_edges_.pop_back();
      path_weights_.pop_back();
    }
    return true;
  }

  bool Seen(const Cycle& c) {
    std::vector<int> key = c.edges;
    std::sort(key.begin(), key.end());
    return !seen_.insert(key).second;
  }

  const AvGraph& g_;
  const std::vector<bool>& include_;
  size_t cap_;
  std::vector<Cycle>* out_ = nullptr;
  int start_ = 0;
  std::vector<bool> on_path_;
  std::vector<int> path_nodes_;
  std::vector<int> path_edges_;
  std::vector<int64_t> path_weights_;
  std::set<std::vector<int>> seen_;
};

// Rule-at-weight-class assignment of a candidate cycle (Def 5.1 adapted:
// the unrolled chain repeats the cycle's rule sequence with period |weight|,
// so argument positions conflict when they demand different rules at the
// same class modulo the weight). Returns false on conflict.
bool CycleConsistent(const AvGraph& g, const Cycle& c,
                     std::map<int64_t, int>* rule_at_class) {
  int64_t period = c.weight < 0 ? -c.weight : c.weight;
  int64_t w = 0;
  int at = c.nodes[0];
  for (size_t i = 0; i <= c.edges.size(); ++i) {
    const AvGraph::Node& n = g.nodes()[static_cast<size_t>(at)];
    if (n.kind == AvGraph::NodeKind::kArgument) {
      int64_t cls = ((w % period) + period) % period;
      auto [it, inserted] = rule_at_class->emplace(cls, n.rule_index);
      if (!inserted && it->second != n.rule_index) return false;
    }
    if (i == c.edges.size()) break;
    int e = c.edges[i];
    w += StepWeight(g, e, at);
    const AvGraph::Edge& edge = g.edges()[static_cast<size_t>(e)];
    at = edge.from == at ? edge.to : edge.from;
  }
  return true;
}

// Def 5.2 condition 3: a predicate-edge-free path, consistent with the
// cycle's rule assignment, from some nondistinguished variable to argument
// node `arg` (searched backwards from `arg` over (node, class) states).
bool HasConsistentFeeder(const AvGraph& g, const std::vector<bool>& include,
                         const std::map<int64_t, int>& rule_at_class,
                         int64_t period, int arg, int64_t arg_class) {
  std::set<std::pair<int, int64_t>> visited;
  std::vector<std::pair<int, int64_t>> stack{{arg, arg_class}};
  visited.insert({arg, arg_class});
  while (!stack.empty()) {
    auto [u, cls] = stack.back();
    stack.pop_back();
    if (IsNondistinguishedVar(g, u)) return true;
    for (const AvGraph::Step& s : g.Adjacent(u, /*augmented=*/false)) {
      int v = s.neighbor;
      if (!include[static_cast<size_t>(v)]) continue;
      int64_t vcls = (((cls + s.weight) % period) + period) % period;
      const AvGraph::Node& n = g.nodes()[static_cast<size_t>(v)];
      if (n.kind == AvGraph::NodeKind::kArgument) {
        auto it = rule_at_class.find(vcls);
        if (it != rule_at_class.end() && it->second != n.rule_index) continue;
      }
      if (visited.insert({v, vcls}).second) stack.push_back({v, vcls});
    }
  }
  return false;
}

ChainAnalysis DetectMultiRule(const AvGraph& g) {
  ChainAnalysis analysis;
  std::vector<bool> filter = RecursiveRuleFilter(g);
  GraphView core_view(g, filter, /*augmented=*/false);

  // Soundness gate. An unbounded chain yields a closed walk of nonzero
  // weight whose every node lies on a Lemma-3.3 valley path through a
  // nondistinguished variable, hence is core-reachable from one. The walk
  // need NOT be a simple cycle of the base graph (it can be simple only in
  // the weight-modular covering graph — e.g. a weight-1 rule cycle pumped
  // through another rule's parallel identity/unification pair), so the
  // *absence* test must be the coarser one: no nonzero-weight cycle at all
  // among the fed nodes. Only if that holds may we declare independence.
  std::vector<bool> fed(g.nodes().size(), false);
  {
    std::vector<int> stack;
    for (size_t v = 0; v < g.nodes().size(); ++v) {
      if (filter[v] && IsNondistinguishedVar(g, static_cast<int>(v))) {
        fed[v] = true;
        stack.push_back(static_cast<int>(v));
      }
    }
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      for (const AvGraph::Step& s : g.Adjacent(u, /*augmented=*/false)) {
        size_t v = static_cast<size_t>(s.neighbor);
        if (!filter[v] || fed[v]) continue;
        fed[v] = true;
        stack.push_back(s.neighbor);
      }
    }
  }
  GraphView fed_view(g, fed, /*augmented=*/true);
  bool any_nonzero_cycle = false;
  for (int c = 0; c < fed_view.num_components(); ++c) {
    if (fed_view.ComponentCycleGcd(c) != 0) any_nonzero_cycle = true;
  }
  if (!any_nonzero_cycle) {
    // Sound: no chain generating structure can exist.
    ComputeChainConnectivity(g, core_view, &analysis);
    return analysis;
  }
  analysis.has_chain_generating_path = true;
  // Mark the atoms on nonzero cycles of the fed subgraph for §6.
  for (size_t v = 0; v < g.nodes().size(); ++v) {
    const AvGraph::Node& n = g.nodes()[v];
    if (n.kind == AvGraph::NodeKind::kArgument && !n.in_exit_rule &&
        !n.recursive_atom && fed_view.OnNonzeroCycle(static_cast<int>(v))) {
      analysis.atoms_on_chains.insert(AtomRef{n.rule_index, n.atom_index});
    }
  }

  // Refinement: look for a consistency-checked simple-cycle witness
  // (Def 5.1/5.2). Finding one upgrades the report; not finding one leaves
  // the conservative verdict with exact == false (the cycle may only be
  // simple in the covering graph, or may be spurious).
  constexpr size_t kCycleCap = 20000;
  std::vector<Cycle> cycles;
  CycleEnumerator enumerator(g, filter, kCycleCap);
  if (!enumerator.Run(&cycles)) {
    analysis.exact = false;
    analysis.note = "cycle enumeration cap exceeded; nonzero-weight cycles "
                    "exist among fed nodes";
    ComputeChainConnectivity(g, core_view, &analysis);
    return analysis;
  }

  bool witness_found = false;
  for (const Cycle& c : cycles) {
    if (c.weight == 0) continue;
    std::map<int64_t, int> rule_at_class;
    if (!CycleConsistent(g, c, &rule_at_class)) continue;
    int64_t period = c.weight < 0 ? -c.weight : c.weight;

    // Every argument position on the cycle needs a consistent feeder path
    // from a nondistinguished variable (Def 5.2 condition 3).
    bool all_fed = true;
    int64_t w = 0;
    int at = c.nodes[0];
    std::vector<std::pair<int, int64_t>> arg_positions;
    for (size_t i = 0; i <= c.edges.size(); ++i) {
      const AvGraph::Node& n = g.nodes()[static_cast<size_t>(at)];
      if (n.kind == AvGraph::NodeKind::kArgument && i < c.edges.size()) {
        arg_positions.emplace_back(at, ((w % period) + period) % period);
      }
      if (i == c.edges.size()) break;
      w += StepWeight(g, c.edges[i], at);
      const AvGraph::Edge& edge = g.edges()[static_cast<size_t>(c.edges[i])];
      at = edge.from == at ? edge.to : edge.from;
    }
    for (const auto& [node, cls] : arg_positions) {
      if (!HasConsistentFeeder(g, filter, rule_at_class, period, node, cls)) {
        all_fed = false;
        break;
      }
    }
    if (!all_fed) continue;

    witness_found = true;
    if (!analysis.witness.has_value()) {
      ChainWitness witness;
      witness.nodes = c.nodes;
      witness.edges = c.edges;
      witness.weight = c.weight;
      analysis.witness = witness;
    }
    for (const auto& [node, cls] : arg_positions) {
      const AvGraph::Node& n = g.nodes()[static_cast<size_t>(node)];
      if (!n.recursive_atom) {
        analysis.atoms_on_chains.insert(AtomRef{n.rule_index, n.atom_index});
      }
    }
  }

  if (!witness_found) {
    analysis.exact = false;
    analysis.note =
        "nonzero-weight cycles exist among nodes fed by nondistinguished "
        "variables, but no consistent simple-cycle witness was found; the "
        "chain may be simple only in the covering graph";
  }
  ComputeChainConnectivity(g, core_view, &analysis);
  return analysis;
}

}  // namespace

std::string ChainWitness::ToString(const AvGraph& g) const {
  std::vector<std::string> labels;
  for (int n : nodes) {
    labels.push_back(g.nodes()[static_cast<size_t>(n)].label);
  }
  return StrFormat("cycle [%s] weight %lld", Join(labels, " - ").c_str(),
                   static_cast<long long>(weight));
}

Result<ChainAnalysis> DetectChains(const AvGraph& g) {
  if (g.num_recursive_rules() == 0) {
    return Status::InvalidArgument(
        "chain detection requires at least one recursive rule");
  }
  // The two-phase linear-time algorithm relies on the component structure of
  // Lemmas 3.1/3.2, which assumes a single *linear* rule (each distinguished
  // variable has exactly one incident unification edge). A nonlinear rule
  // (several recursive atoms) is handled by the general cycle enumeration,
  // like multiple rules.
  std::set<std::pair<int, int>> recursive_atoms;
  for (const AvGraph::Node& n : g.nodes()) {
    if (n.kind == AvGraph::NodeKind::kArgument && n.recursive_atom) {
      recursive_atoms.insert({n.rule_index, n.atom_index});
    }
  }
  if (g.num_recursive_rules() == 1 && recursive_atoms.size() <= 1) {
    return DetectSingleRule(g);
  }
  return DetectMultiRule(g);
}

}  // namespace dire::core
