#include "core/expansion.h"

#include <functional>
#include <map>

#include "ast/substitution.h"
#include "base/obs.h"
#include "base/string_util.h"

namespace dire::core {
namespace {

// Subscripts every variable of `r` with "_<iteration>" (ExpandRule line 8).
ast::Rule Subscript(const ast::Rule& r, int iteration) {
  return ast::RenameVariables(r, StrFormat("_%d", iteration));
}

// The unification step of ExpandRule: because rule heads contain no repeated
// variables and no constants (§2 restriction, enforced by MakeDefinition),
// unifying the subscripted head with the CurString instance of the recursive
// atom is a plain substitution head-var -> instance-arg.
ast::Substitution HeadUnifier(const ast::Rule& subscripted_rule,
                              const ast::Atom& instance) {
  ast::Substitution s;
  for (size_t i = 0; i < subscripted_rule.head.args.size(); ++i) {
    s.Bind(subscripted_rule.head.args[i].text(), instance.args[i]);
  }
  return s;
}

}  // namespace

ExpansionEnumerator::ExpansionEnumerator(const ast::RecursiveDefinition& def,
                                         Options options)
    : def_(def), options_(options) {
  Partial initial;
  initial.recursive_atom = ast::Atom(
      def_.target, [&] {
        std::vector<ast::Term> args;
        for (const std::string& v : def_.head_vars) {
          args.push_back(ast::Term::Var(v));
        }
        return args;
      }());
  partials_.push_back(std::move(initial));
}

Result<ExpansionEnumerator> ExpansionEnumerator::Create(
    const ast::RecursiveDefinition& def, const Options& options) {
  if (def.recursive_rules.empty()) {
    return Status::InvalidArgument(
        "definition has no recursive rule; its expansion is just its exit "
        "rules");
  }
  for (const ast::Rule& r : def.recursive_rules) {
    if (!ast::IsLinearRecursive(r, def.target)) {
      return Status::InvalidArgument(
          "ExpandRule requires linear recursive rules; not linear: " +
          r.ToString());
    }
  }
  if (def.exit_rules.empty()) {
    return Status::InvalidArgument(
        "definition has no exit rule; every expansion string is empty");
  }
  return ExpansionEnumerator(def, options);
}

ExpansionEnumerator::Partial ExpansionEnumerator::ApplyRecursive(
    const Partial& p, const ast::Rule& r, int rule_index) const {
  ast::Rule rule = Subscript(r, depth_);
  ast::Substitution unifier = HeadUnifier(rule, p.recursive_atom);

  Partial out;
  out.rule_sequence = p.rule_sequence;
  out.rule_sequence.push_back(rule_index);
  out.atoms.assign(p.atoms.begin(),
                   p.atoms.begin() + static_cast<long>(p.insert_at));
  bool seen_recursive = false;
  for (const ast::Atom& a : rule.body) {
    ast::Atom instantiated = unifier.Apply(a);
    if (!seen_recursive && a.predicate == def_.target) {
      seen_recursive = true;
      out.recursive_atom = std::move(instantiated);
      out.insert_at = out.atoms.size();
      continue;
    }
    out.atoms.push_back(std::move(instantiated));
  }
  out.atoms.insert(out.atoms.end(),
                   p.atoms.begin() + static_cast<long>(p.insert_at),
                   p.atoms.end());
  return out;
}

std::vector<ast::Atom> ExpansionEnumerator::ApplyExit(
    const Partial& p, const ast::Rule& r) const {
  ast::Rule rule = Subscript(r, depth_);
  ast::Substitution unifier = HeadUnifier(rule, p.recursive_atom);
  std::vector<ast::Atom> out(p.atoms.begin(),
                             p.atoms.begin() + static_cast<long>(p.insert_at));
  for (const ast::Atom& a : rule.body) {
    out.push_back(unifier.Apply(a));
  }
  out.insert(out.end(), p.atoms.begin() + static_cast<long>(p.insert_at),
             p.atoms.end());
  return out;
}

Result<std::vector<ExpansionString>> ExpansionEnumerator::NextLevel() {
  obs::Span span("expansion.next_level", "core");
  span.Attr("depth", depth_);
  span.Attr("partials", partials_.size());
  if (options_.guard != nullptr) {
    DIRE_RETURN_IF_ERROR(options_.guard->Check());
  }
  std::vector<ast::Term> head;
  for (const std::string& v : def_.head_vars) head.push_back(ast::Term::Var(v));

  std::vector<ExpansionString> level;
  for (const Partial& p : partials_) {
    for (size_t e = 0; e < def_.exit_rules.size(); ++e) {
      ExpansionString s;
      s.query.head = head;
      s.query.body = ApplyExit(p, def_.exit_rules[e]);
      s.rule_sequence = p.rule_sequence;
      s.exit_rule = static_cast<int>(e);
      s.depth = depth_;
      level.push_back(std::move(s));
    }
  }

  // Advance CurString by one application of each recursive rule.
  size_t next_size = partials_.size() * def_.recursive_rules.size();
  if (next_size > options_.max_partial_strings) {
    return Status::Inconclusive(StrFormat(
        "expansion level %d would hold %zu partial strings (cap %zu)",
        depth_ + 1, next_size, options_.max_partial_strings));
  }
  std::vector<Partial> next;
  next.reserve(next_size);
  for (const Partial& p : partials_) {
    // Levels grow geometrically with several recursive rules; poll the
    // guard while materializing one so a deadline trips mid-level.
    if (options_.guard != nullptr && (next.size() & 255u) == 0) {
      DIRE_RETURN_IF_ERROR(options_.guard->Check());
    }
    for (size_t r = 0; r < def_.recursive_rules.size(); ++r) {
      next.push_back(
          ApplyRecursive(p, def_.recursive_rules[r], static_cast<int>(r)));
    }
  }
  partials_ = std::move(next);
  ++depth_;
  span.Attr("strings", level.size());
  obs::GetCounter("dire_expansion_levels_total",
                  "Expansion levels materialized")
      ->Add(1);
  obs::GetCounter("dire_expansion_strings_total",
                  "Expansion strings enumerated")
      ->Add(level.size());
  return level;
}

Result<ast::Atom> ExpansionEnumerator::CurrentRecursiveAtom() const {
  if (partials_.size() != 1) {
    return Status::InvalidArgument(
        "CurrentRecursiveAtom requires a single recursive rule");
  }
  return partials_.front().recursive_atom;
}

std::vector<std::pair<std::vector<int>, std::string>>
ExpansionEnumerator::PartialStrings() const {
  std::vector<std::pair<std::vector<int>, std::string>> out;
  for (const Partial& p : partials_) {
    std::string text;
    for (size_t i = 0; i <= p.atoms.size(); ++i) {
      if (i == p.insert_at) {
        if (!text.empty()) text += ' ';
        text += p.recursive_atom.ToString();
      }
      if (i == p.atoms.size()) break;
      if (!text.empty()) text += ' ';
      text += p.atoms[i].ToString();
    }
    out.emplace_back(p.rule_sequence, std::move(text));
  }
  return out;
}

Result<std::string> RenderRuleGoalTree(const ast::RecursiveDefinition& def,
                                       int depth) {
  DIRE_ASSIGN_OR_RETURN(ExpansionEnumerator it,
                        ExpansionEnumerator::Create(def));
  // Collect all partials per level; parentage is "drop the last rule".
  std::map<std::vector<int>, std::string> labels;
  for (const auto& [seq, text] : it.PartialStrings()) labels[seq] = text;
  for (int level = 0; level < depth; ++level) {
    Result<std::vector<ExpansionString>> ignored = it.NextLevel();
    if (!ignored.ok()) return ignored.status();
    for (const auto& [seq, text] : it.PartialStrings()) labels[seq] = text;
  }

  std::string out;
  // Depth-first rendering from the root (empty sequence).
  std::function<void(const std::vector<int>&, const std::string&)> render =
      [&](const std::vector<int>& seq, const std::string& prefix) {
        size_t num_rules = def.recursive_rules.size();
        std::vector<std::vector<int>> children;
        for (size_t r = 0; r < num_rules; ++r) {
          std::vector<int> child = seq;
          child.push_back(static_cast<int>(r));
          if (labels.count(child) != 0) children.push_back(std::move(child));
        }
        for (size_t i = 0; i < children.size(); ++i) {
          bool last = i + 1 == children.size();
          out += prefix + (last ? "`- " : "|- ") +
                 StrFormat("[r%d] ", children[i].back() + 1) +
                 labels[children[i]] + "\n";
          render(children[i], prefix + (last ? "   " : "|  "));
        }
      };
  out += labels[{}] + "\n";
  render({}, "");
  return out;
}

Result<std::vector<ExpansionString>> ExpandToDepth(
    const ast::RecursiveDefinition& def, int levels,
    const ExpansionEnumerator::Options& options) {
  DIRE_ASSIGN_OR_RETURN(ExpansionEnumerator it,
                        ExpansionEnumerator::Create(def, options));
  std::vector<ExpansionString> out;
  for (int k = 0; k < levels; ++k) {
    DIRE_ASSIGN_OR_RETURN(std::vector<ExpansionString> level, it.NextLevel());
    for (ExpansionString& s : level) out.push_back(std::move(s));
  }
  return out;
}

}  // namespace dire::core
