#include "core/optimize.h"

#include <set>

#include "base/string_util.h"
#include "core/av_graph.h"
#include "core/graph_view.h"

namespace dire::core {
namespace {

ast::Program OriginalProgram(const ast::RecursiveDefinition& def) {
  ast::Program p;
  p.rules = def.recursive_rules;
  for (const ast::Rule& r : def.exit_rules) p.rules.push_back(r);
  return p;
}

ast::Atom HeadAtom(const std::string& predicate,
                   const std::vector<std::string>& head_vars) {
  std::vector<ast::Term> args;
  for (const std::string& v : head_vars) args.push_back(ast::Term::Var(v));
  return ast::Atom(predicate, std::move(args));
}

}  // namespace

Result<HoistResult> HoistUnconnectedPredicates(
    const ast::RecursiveDefinition& def, const HoistOptions& options) {
  HoistResult out;
  out.program = OriginalProgram(def);

  if (def.recursive_rules.size() != 1) {
    out.note = "hoisting is implemented for a single linear recursive rule";
    return out;
  }
  const ast::Rule& rule = def.recursive_rules.front();
  if (!ast::IsLinearRecursive(rule, def.target)) {
    out.note = "recursive rule is not linear";
    return out;
  }
  if (def.exit_rules.empty()) {
    out.note = "no exit rule; nothing to evaluate";
    return out;
  }

  DIRE_ASSIGN_OR_RETURN(AvGraph graph, AvGraph::Build(def));
  DIRE_ASSIGN_OR_RETURN(ChainAnalysis chains, DetectChains(graph));
  if (!chains.has_chain_generating_path) {
    out.note =
        "no unbounded chain: the definition is strongly data independent; "
        "use BoundedRewrite instead of hoisting";
    return out;
  }

  // Candidates: nonrecursive atoms not connected to any unbounded chain
  // (Def 6.1). Indexed by body atom position.
  std::set<int> candidates;
  for (size_t j = 0; j < rule.body.size(); ++j) {
    if (rule.body[j].predicate == def.target) continue;
    if (chains.chain_connected_atoms.count(AtomRef{0, static_cast<int>(j)}) ==
        0) {
      candidates.insert(static_cast<int>(j));
    }
  }
  if (candidates.empty()) {
    out.note = "every nonrecursive atom is connected to an unbounded chain";
    return out;
  }

  // Structural stability filter (see header): iterate to a fixpoint because
  // removing an atom can strand a variable component another atom relies on.
  GraphView view = GraphView::All(graph, /*augmented=*/false);
  std::set<int> hoistable = candidates;
  bool changed_set = true;
  while (changed_set) {
    changed_set = false;
    for (auto it = hoistable.begin(); it != hoistable.end();) {
      int j = *it;
      const ast::Atom& atom = rule.body[static_cast<size_t>(j)];
      bool ok = true;
      for (const ast::Term& t : atom.args) {
        if (!t.IsVariable()) {
          ok = false;
          break;
        }
        int v = graph.VariableNode(t.text());
        const AvGraph::Node& vn = graph.nodes()[static_cast<size_t>(v)];
        if (vn.distinguished) {
          // Stable iff the variable reappears in the same role every
          // iteration: it rides a cycle whose weights generate all of Z.
          int c = view.ComponentOf(v);
          if (!view.OnCycle(v) || c < 0 || view.ComponentCycleGcd(c) != 1) {
            ok = false;
            break;
          }
        } else {
          // Private iff its component holds no recursive-atom argument and
          // only argument positions of atoms being hoisted.
          int c = view.ComponentOf(v);
          for (int node : view.ComponentNodes(c)) {
            const AvGraph::Node& n = graph.nodes()[static_cast<size_t>(node)];
            if (n.kind != AvGraph::NodeKind::kArgument) continue;
            if (n.in_exit_rule || n.recursive_atom ||
                hoistable.count(n.atom_index) == 0) {
              ok = false;
              break;
            }
          }
          if (!ok) break;
        }
      }
      if (!ok) {
        it = hoistable.erase(it);
        changed_set = true;
      } else {
        ++it;
      }
    }
  }
  if (hoistable.empty()) {
    out.note =
        "unconnected atoms exist but none passed the structural stability "
        "check";
    return out;
  }

  // Pick a fresh auxiliary predicate name.
  std::string aux = options.aux_predicate.empty() ? def.target + "__core"
                                                  : options.aux_predicate;
  {
    std::set<std::string> taken;
    for (const ast::Rule& r : out.program.rules) {
      taken.insert(r.head.predicate);
      for (const ast::Atom& a : r.body) taken.insert(a.predicate);
    }
    while (taken.count(aux) != 0) aux += "_";
  }

  // Assemble the transformed program.
  ast::Program transformed;
  ast::Atom t_head = HeadAtom(def.target, def.head_vars);
  ast::Atom aux_head = HeadAtom(aux, def.head_vars);

  for (const ast::Rule& e : def.exit_rules) {
    transformed.rules.push_back(ast::Rule(t_head, e.body));
  }
  std::vector<ast::Atom> bridge_body;
  std::vector<ast::Atom> core_body;
  for (size_t j = 0; j < rule.body.size(); ++j) {
    ast::Atom a = rule.body[j];
    if (a.predicate == def.target) a.predicate = aux;
    bridge_body.push_back(a);
    if (hoistable.count(static_cast<int>(j)) == 0) {
      core_body.push_back(a);
    } else {
      out.hoisted.push_back(rule.body[j]);
    }
  }
  transformed.rules.push_back(ast::Rule(t_head, bridge_body));
  transformed.rules.push_back(ast::Rule(aux_head, core_body));
  for (const ast::Rule& e : def.exit_rules) {
    transformed.rules.push_back(ast::Rule(aux_head, e.body));
  }

  if (options.verify) {
    DIRE_ASSIGN_OR_RETURN(
        EquivalenceCheckResult check,
        CheckEquivalenceOnRandomDatabases(out.program, transformed,
                                          def.target,
                                          options.verify_options));
    if (!check.equivalent) {
      out.note =
          "hoisting verification failed; returning the original program "
          "unchanged:\n" +
          check.counterexample;
      out.hoisted.clear();
      return out;
    }
  }

  out.changed = true;
  out.program = std::move(transformed);
  out.aux_predicate = aux;
  out.note = StrFormat("hoisted %zu atom(s) out of the recursion",
                       out.hoisted.size());
  return out;
}

}  // namespace dire::core
