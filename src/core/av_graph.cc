#include "core/av_graph.h"

#include <map>

#include "base/string_util.h"

namespace dire::core {
namespace {

// Builds display names for atoms: the paper writes the exit-rule occurrence
// of a predicate as e' when e also occurs in the recursive rule, and we
// additionally number repeated occurrences (e, e_2, ...).
std::string AtomBaseLabel(const std::string& predicate, bool in_exit_rule,
                          int occurrence) {
  std::string base = predicate;
  if (in_exit_rule) base += '\'';
  if (occurrence > 1) base += StrFormat("_%d", occurrence);
  return base;
}

}  // namespace

Result<AvGraph> AvGraph::Build(const ast::RecursiveDefinition& def) {
  AvGraph g;
  g.target_ = def.target;
  g.num_recursive_rules_ = static_cast<int>(def.recursive_rules.size());

  std::map<std::string, int> var_node;
  auto variable_node = [&](const std::string& name) {
    auto it = var_node.find(name);
    if (it != var_node.end()) return it->second;
    Node n;
    n.kind = NodeKind::kVariable;
    n.var_name = name;
    n.label = name;
    int id = static_cast<int>(g.nodes_.size());
    g.nodes_.push_back(std::move(n));
    var_node.emplace(name, id);
    return id;
  };

  // Distinguished variables first, so they exist even if unused in bodies.
  for (const std::string& v : def.head_vars) {
    int id = variable_node(v);
    g.nodes_[static_cast<size_t>(id)].distinguished = true;
  }

  // Label disambiguation across the whole graph.
  std::map<std::string, int> occurrence_count;

  auto add_rule = [&](const ast::Rule& rule, int rule_index,
                      bool is_exit) -> Status {
    for (size_t atom_index = 0; atom_index < rule.body.size(); ++atom_index) {
      const ast::Atom& atom = rule.body[atom_index];
      bool recursive_atom = !is_exit && atom.predicate == def.target;
      int occurrence = ++occurrence_count[atom.predicate +
                                          (is_exit ? "'" : "")];
      std::string base =
          AtomBaseLabel(atom.predicate, is_exit, occurrence);
      std::vector<int> arg_ids;
      for (size_t pos = 0; pos < atom.args.size(); ++pos) {
        const ast::Term& term = atom.args[pos];
        if (!term.IsVariable()) {
          return Status::InvalidArgument(
              "A/V graphs require constant-free rule bodies; found " +
              atom.ToString());
        }
        Node n;
        n.kind = NodeKind::kArgument;
        n.rule_index = rule_index;
        n.in_exit_rule = is_exit;
        n.atom_index = static_cast<int>(atom_index);
        n.position = static_cast<int>(pos);
        n.predicate = atom.predicate;
        n.recursive_atom = recursive_atom;
        n.label = StrFormat("%s^%zu", base.c_str(), pos + 1);
        int arg_id = static_cast<int>(g.nodes_.size());
        g.nodes_.push_back(std::move(n));
        arg_ids.push_back(arg_id);

        // Identity edge to the variable in this position.
        int var_id = variable_node(term.text());
        g.edges_.push_back(Edge{EdgeKind::kIdentity, arg_id, var_id});

        // Unification edge to the head variable at the same position.
        if (recursive_atom) {
          int head_var = variable_node(def.head_vars[pos]);
          g.edges_.push_back(Edge{EdgeKind::kUnification, arg_id, head_var});
        }
      }
      // Predicate edges between adjacent positions of nonrecursive atoms.
      if (!recursive_atom) {
        for (size_t pos = 0; pos + 1 < arg_ids.size(); ++pos) {
          g.edges_.push_back(Edge{EdgeKind::kPredicate, arg_ids[pos],
                                  arg_ids[pos + 1]});
        }
      }
    }
    return Status::Ok();
  };

  int rule_index = 0;
  for (const ast::Rule& r : def.recursive_rules) {
    DIRE_RETURN_IF_ERROR(add_rule(r, rule_index++, /*is_exit=*/false));
  }
  for (const ast::Rule& r : def.exit_rules) {
    DIRE_RETURN_IF_ERROR(add_rule(r, rule_index++, /*is_exit=*/true));
  }

  // Adjacency lists.
  g.adjacency_core_.resize(g.nodes_.size());
  g.adjacency_aug_.resize(g.nodes_.size());
  for (size_t e = 0; e < g.edges_.size(); ++e) {
    const Edge& edge = g.edges_[e];
    int id = static_cast<int>(e);
    switch (edge.kind) {
      case EdgeKind::kIdentity:
        g.AddStep(edge.from, edge.to, id, 0, /*augmented_only=*/false);
        g.AddStep(edge.to, edge.from, id, 0, /*augmented_only=*/false);
        break;
      case EdgeKind::kUnification:
        g.AddStep(edge.from, edge.to, id, +1, /*augmented_only=*/false);
        g.AddStep(edge.to, edge.from, id, -1, /*augmented_only=*/false);
        break;
      case EdgeKind::kPredicate:
        g.AddStep(edge.from, edge.to, id, 0, /*augmented_only=*/true);
        g.AddStep(edge.to, edge.from, id, 0, /*augmented_only=*/true);
        break;
    }
  }
  return g;
}

void AvGraph::AddStep(int from, int to, int edge, int weight,
                      bool augmented_only) {
  Step s{edge, to, weight};
  adjacency_aug_[static_cast<size_t>(from)].push_back(s);
  if (!augmented_only) {
    adjacency_core_[static_cast<size_t>(from)].push_back(s);
  }
}

int AvGraph::VariableNode(const std::string& name) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].kind == NodeKind::kVariable && nodes_[i].var_name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int AvGraph::ArgumentNode(int rule_index, int atom_index, int position) const {
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.kind == NodeKind::kArgument && n.rule_index == rule_index &&
        n.atom_index == atom_index && n.position == position) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

const std::vector<AvGraph::Step>& AvGraph::Adjacent(int node,
                                                    bool augmented) const {
  return augmented ? adjacency_aug_[static_cast<size_t>(node)]
                   : adjacency_core_[static_cast<size_t>(node)];
}

std::string AvGraph::ToDot(const std::set<int>& highlight_edges) const {
  std::string out = "graph av_graph {\n  rankdir=LR;\n";
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.kind == NodeKind::kVariable) {
      out += StrFormat(
          "  n%zu [label=\"%s\", shape=circle%s];\n", i, n.label.c_str(),
          n.distinguished ? ", style=bold" : "");
    } else {
      out += StrFormat("  n%zu [label=\"%s\", shape=box];\n", i,
                       n.label.c_str());
    }
  }
  for (size_t e = 0; e < edges_.size(); ++e) {
    const Edge& edge = edges_[e];
    std::string attrs;
    switch (edge.kind) {
      case EdgeKind::kIdentity:
        attrs = "style=solid";
        break;
      case EdgeKind::kUnification:
        attrs = "style=dashed, dir=forward";
        break;
      case EdgeKind::kPredicate:
        attrs = "style=dotted";
        break;
    }
    if (highlight_edges.count(static_cast<int>(e)) != 0) {
      attrs += ", color=red, penwidth=2.0";
    }
    out += StrFormat("  n%d -- n%d [%s];\n", edge.from, edge.to,
                     attrs.c_str());
  }
  out += "}\n";
  return out;
}

}  // namespace dire::core
