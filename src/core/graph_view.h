#ifndef DIRE_CORE_GRAPH_VIEW_H_
#define DIRE_CORE_GRAPH_VIEW_H_

#include <cstdint>
#include <vector>

#include "core/av_graph.h"

namespace dire::core {

// The set of weights achievable by walks between two fixed nodes of a
// GraphView. Reversing a walk negates its weight, so the achievable set is
// the coset base + gcd*Z (gcd == 0 means exactly {base}). `connected` false
// means no walk exists.
struct WalkWeights {
  bool connected = false;
  int64_t base = 0;
  int64_t gcd = 0;

  bool ContainsValue(int64_t w) const;
  bool ContainsPositive() const;
};

// True if the two weight sets share an element.
bool Intersects(const WalkWeights& a, const WalkWeights& b);

// The intersection coset of the two weight sets (CRT); connected == false
// when the intersection is empty.
WalkWeights IntersectCosets(const WalkWeights& a, const WalkWeights& b);

// The set of sums {x + y | x in a, y in b}; connected only if both are.
WalkWeights SumOf(const WalkWeights& a, const WalkWeights& b);

// A filtered, weighted, undirected view of an A/V graph restricted to a node
// subset, optionally including predicate edges (the "augmented" graph of
// §4.1). Computes, once, the connected components, spanning-tree potentials,
// per-component cycle structure, and the nodes lying on (nonzero-weight)
// cycles — the primitives behind the paper's §4 and §5 tests.
class GraphView {
 public:
  // `include[v]` selects the nodes; edges are kept when both endpoints are
  // included (and, unless `augmented`, the edge is not a predicate edge).
  GraphView(const AvGraph& g, std::vector<bool> include, bool augmented);

  // Convenience: all nodes.
  static GraphView All(const AvGraph& g, bool augmented);

  int num_nodes() const { return static_cast<int>(include_.size()); }
  bool Included(int v) const { return include_[static_cast<size_t>(v)]; }

  // Component id of v, or -1 if v is excluded.
  int ComponentOf(int v) const { return component_[static_cast<size_t>(v)]; }
  int num_components() const { return static_cast<int>(component_nodes_.size()); }
  const std::vector<int>& ComponentNodes(int c) const {
    return component_nodes_[static_cast<size_t>(c)];
  }

  // Spanning-tree potential of v relative to its component root: the weight
  // of the tree walk root -> v.
  int64_t Potential(int v) const { return potential_[static_cast<size_t>(v)]; }

  // True if component c contains any cycle (parallel edges included).
  bool ComponentHasCycle(int c) const {
    return component_has_cycle_[static_cast<size_t>(c)];
  }
  // gcd of the absolute weights of the component's fundamental cycles
  // (0 when every cycle has weight zero or there are no cycles).
  int64_t ComponentCycleGcd(int c) const {
    return component_gcd_[static_cast<size_t>(c)];
  }

  // Walk weights u -> v: {pot(v)-pot(u) + gcd*Z} when connected (weights of
  // all walks; see WalkWeights).
  WalkWeights Weights(int u, int v) const;

  // v lies on some simple cycle (biconnected component with >= 2 edges).
  bool OnCycle(int v) const { return on_cycle_[static_cast<size_t>(v)]; }
  // v lies on some simple cycle of nonzero weight.
  bool OnNonzeroCycle(int v) const {
    return on_nonzero_cycle_[static_cast<size_t>(v)];
  }

  // The view's edges as (edge id in the A/V graph).
  const std::vector<int>& ViewEdges() const { return view_edges_; }

 private:
  struct ViewEdge {
    int id;  // A/V graph edge id.
    int u;
    int v;
    int weight;  // Traversed u -> v.
  };

  void ComputeComponents();
  void ComputeBiconnectivity();

  const AvGraph& graph_;
  std::vector<bool> include_;
  std::vector<ViewEdge> edges_;
  std::vector<int> view_edges_;
  std::vector<std::vector<std::pair<int, int>>> adj_;  // (edge idx, dir +1/-1)

  std::vector<int> component_;
  std::vector<int64_t> potential_;
  std::vector<std::vector<int>> component_nodes_;
  std::vector<bool> component_has_cycle_;
  std::vector<int64_t> component_gcd_;
  std::vector<bool> on_cycle_;
  std::vector<bool> on_nonzero_cycle_;
};

}  // namespace dire::core

#endif  // DIRE_CORE_GRAPH_VIEW_H_
