#include "core/weak.h"

#include <vector>

#include "base/obs.h"
#include "base/string_util.h"
#include "core/chain.h"
#include "core/graph_view.h"

namespace dire::core {
namespace {

// Locates the argument nodes of an atom, in position order.
std::vector<int> AtomArgNodes(const AvGraph& g, int rule_index,
                              int atom_index, size_t arity) {
  std::vector<int> out;
  for (size_t pos = 0; pos < arity; ++pos) {
    out.push_back(g.ArgumentNode(rule_index, atom_index,
                                 static_cast<int>(pos)));
  }
  return out;
}

std::vector<int> VariableNodes(const AvGraph& g, bool distinguished_only) {
  std::vector<int> out;
  for (size_t i = 0; i < g.nodes().size(); ++i) {
    const AvGraph::Node& n = g.nodes()[i];
    if (n.kind != AvGraph::NodeKind::kVariable) continue;
    if (distinguished_only && !n.distinguished) continue;
    out.push_back(static_cast<int>(i));
  }
  return out;
}

// Def 4.3: a positive-weight path from some argument of p, through some
// nondistinguished variable node, to an argument of e.
bool ExitConnected(const AvGraph& g, const GraphView& view,
                   const std::vector<int>& p_args,
                   const std::vector<int>& e_args) {
  std::vector<int> nondist;
  for (size_t i = 0; i < g.nodes().size(); ++i) {
    const AvGraph::Node& n = g.nodes()[i];
    if (n.kind == AvGraph::NodeKind::kVariable && !n.distinguished) {
      nondist.push_back(static_cast<int>(i));
    }
  }
  for (int a : p_args) {
    for (int v : nondist) {
      WalkWeights first = view.Weights(a, v);
      if (!first.connected) continue;
      for (int b : e_args) {
        WalkWeights second = view.Weights(v, b);
        if (SumOf(first, second).ContainsPositive()) return true;
      }
    }
  }
  return false;
}

// Def 4.2: the four irredundance clauses. Returns the first clause that
// holds (1..4), or 0 when e is redundant.
int ExitIrredundanceCondition(const AvGraph& g, const GraphView& view,
                              const ast::Atom& p_atom,
                              const ast::Atom& e_atom,
                              const std::vector<int>& p_args,
                              const std::vector<int>& e_args) {
  // Clause 1: e is a different predicate from p.
  if (e_atom.predicate != p_atom.predicate ||
      e_atom.arity() != p_atom.arity()) {
    return 1;
  }

  size_t arity = e_atom.arity();

  // Clause 2: a distinguished variable V on a cycle reaches some argument of
  // e but not the same argument of p.
  for (int v : VariableNodes(g, /*distinguished_only=*/true)) {
    if (!view.OnCycle(v)) continue;
    for (size_t i = 0; i < arity; ++i) {
      if (view.Weights(v, e_args[i]).connected &&
          !view.Weights(v, p_args[i]).connected) {
        return 2;
      }
    }
  }

  // Clause 3: some variable reaches two distinct arguments of e with equal
  // weight, while no variable does so for the corresponding arguments of p.
  std::vector<int> all_vars = VariableNodes(g, /*distinguished_only=*/false);
  for (size_t i = 0; i < arity; ++i) {
    for (size_t j = i + 1; j < arity; ++j) {
      bool e_side = false;
      for (int v : all_vars) {
        if (Intersects(view.Weights(v, e_args[i]),
                       view.Weights(v, e_args[j]))) {
          e_side = true;
          break;
        }
      }
      if (!e_side) continue;
      bool p_side = false;
      for (int v : all_vars) {
        if (Intersects(view.Weights(v, p_args[i]),
                       view.Weights(v, p_args[j]))) {
          p_side = true;
          break;
        }
      }
      if (!p_side) return 3;
    }
  }

  // Clause 4: let {V_i} be the distinguished variables appearing in e that
  // are reachable from arguments of p by positive-weight paths (these are
  // the variables e shares with the chain). e is irredundant iff there is no
  // single weight k with a path of weight k from each V_i to the
  // corresponding argument of p.
  WalkWeights common;
  common.connected = true;
  common.base = 0;
  common.gcd = 1;  // Start with "all integers".
  bool any_pair = false;
  for (size_t pos = 0; pos < arity; ++pos) {
    const ast::Term& t = e_atom.args[pos];
    if (!t.IsVariable()) continue;
    int v = g.VariableNode(t.text());
    if (v < 0 || !g.nodes()[static_cast<size_t>(v)].distinguished) continue;
    bool positive_from_p = false;
    for (int a : p_args) {
      if (view.Weights(a, v).ContainsPositive()) {
        positive_from_p = true;
        break;
      }
    }
    if (!positive_from_p) continue;
    any_pair = true;
    common = IntersectCosets(common, view.Weights(v, p_args[pos]));
    if (!common.connected) return 4;
  }
  // With no shared variables (or a common k), clause 4 does not make e
  // irredundant.
  (void)any_pair;
  return 0;
}

}  // namespace

Result<WeakIndependenceResult> TestWeakIndependence(
    const ast::RecursiveDefinition& def, const ExecutionGuard* guard) {
  obs::Span span("detect.weak", "core");
  span.Attr("target", def.target);
  obs::GetCounter("dire_detect_weak_tests_total",
                  "Weak data-independence tests run")
      ->Add(1);
  if (def.recursive_rules.empty()) {
    return Status::InvalidArgument("no recursive rule in definition");
  }
  if (def.exit_rules.empty()) {
    return Status::InvalidArgument(
        "weak data independence is a property of a recursive/exit rule "
        "pairing; no exit rule given");
  }

  if (guard != nullptr) DIRE_RETURN_IF_ERROR(guard->Check());
  DIRE_ASSIGN_OR_RETURN(AvGraph graph, AvGraph::Build(def));
  if (guard != nullptr) DIRE_RETURN_IF_ERROR(guard->Check());
  DIRE_ASSIGN_OR_RETURN(ChainAnalysis chains, DetectChains(graph));
  if (guard != nullptr) DIRE_RETURN_IF_ERROR(guard->Check());
  DIRE_ASSIGN_OR_RETURN(StrongIndependenceResult strong,
                        TestStrongIndependence(def, graph, chains));

  WeakIndependenceResult out;
  out.has_chain_generating_path = chains.has_chain_generating_path;

  // Strong independence carries over to any pairing.
  if (strong.verdict == Verdict::kIndependent) {
    out.verdict = Verdict::kIndependent;
    out.theorem = strong.theorem;
    out.explanation =
        "the recursive rules are strongly data independent, so any exit "
        "rule yields a data independent definition (" +
        strong.explanation + ")";
    return out;
  }

  // The decidable class of Theorem 4.3: one regular recursive rule and one
  // single-atom exit rule.
  bool in_class =
      def.recursive_rules.size() == 1 && def.exit_rules.size() == 1 &&
      ast::IsRegularRecursive(def.recursive_rules.front(), def.target) &&
      def.exit_rules.front().body.size() == 1;
  if (!in_class) {
    out.verdict = Verdict::kUnknown;
    out.explanation =
        "outside the decidable class of Theorem 4.3 (one regular recursive "
        "rule + one single-atom exit rule); weak data independence is "
        "undecidable in general (Vardi, Gaifman) — consider the "
        "BoundedRewrite semi-decision";
    return out;
  }

  const ast::Rule& rrule = def.recursive_rules.front();
  int p_atom_index = -1;
  for (size_t i = 0; i < rrule.body.size(); ++i) {
    if (rrule.body[i].predicate != def.target) {
      p_atom_index = static_cast<int>(i);
      break;
    }
  }
  const ast::Atom& p_atom = rrule.body[static_cast<size_t>(p_atom_index)];
  const ast::Atom& e_atom = def.exit_rules.front().body.front();

  GraphView view = GraphView::All(graph, /*augmented=*/false);
  std::vector<int> p_args =
      AtomArgNodes(graph, /*rule_index=*/0, p_atom_index, p_atom.arity());
  std::vector<int> e_args = AtomArgNodes(
      graph, /*rule_index=*/1, /*atom_index=*/0, e_atom.arity());

  out.regular_pair_test_applied = true;
  out.exit_connected = ExitConnected(graph, view, p_args, e_args);
  out.irredundance_condition = ExitIrredundanceCondition(
      graph, view, p_atom, e_atom, p_args, e_args);
  out.exit_irredundant = out.irredundance_condition != 0;
  out.theorem = "Theorem 4.3";

  if (out.has_chain_generating_path && out.exit_connected &&
      out.exit_irredundant) {
    out.verdict = Verdict::kDependent;
    out.explanation = StrFormat(
        "chain generating path present, exit predicate connected to the "
        "unbounded chain (Def 4.3) and irredundant (Def 4.2 clause %d): by "
        "Theorem 4.3 the pair is data dependent",
        out.irredundance_condition);
  } else {
    out.verdict = Verdict::kIndependent;
    std::string why;
    if (!out.has_chain_generating_path) {
      why = "no chain generating path";
    } else if (!out.exit_connected) {
      why = "the exit predicate is not connected to the unbounded chain "
            "(Def 4.3)";
    } else {
      why = "the exit predicate is redundant (no clause of Def 4.2 holds)";
    }
    out.explanation =
        "by Theorem 4.3 the pair is data independent: " + why;
  }
  return out;
}

}  // namespace dire::core
