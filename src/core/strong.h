#ifndef DIRE_CORE_STRONG_H_
#define DIRE_CORE_STRONG_H_

#include <string>

#include "ast/classify.h"
#include "base/guard.h"
#include "base/result.h"
#include "core/av_graph.h"
#include "core/chain.h"

namespace dire::core {

// Three-valued analysis outcome. kUnknown is unavoidable in general:
// weak data independence is undecidable even for one linear rule (Vardi),
// and strong data independence is undecidable for multiple linear rules
// (Mairson–Sagiv), as the paper discusses in §4.3 and §5.
enum class Verdict {
  kIndependent,
  kDependent,
  kUnknown,
};

const char* VerdictName(Verdict v);

struct StrongIndependenceResult {
  Verdict verdict = Verdict::kUnknown;
  // Which of the paper's results justified the verdict ("Theorem 4.1",
  // "Theorem 4.2", "Theorem 5.1"), empty for kUnknown.
  std::string theorem;
  std::string explanation;
  ChainAnalysis chains;
};

// Tests strong data independence (Def 2.2: the recursive rules stay bounded
// under *any* exit rule) of the recursive rules of `def`:
//   * no chain generating path                  -> kIndependent
//     (Theorem 4.1 for one rule, Theorem 5.1 for several);
//   * CGP + single rule + no repeated nonrecursive predicate
//                                               -> kDependent (Theorem 4.2);
//   * CGP otherwise                             -> kUnknown (the test is
//     incomplete there: the paper's Example 4.4 is a strongly independent
//     rule with a CGP).
// Requires at least one recursive rule, all linear.
//
// The optional `guard` bounds the semi-decision: the multi-rule chain
// detection enumerates cycles and can be slow on adversarial rule sets, so
// the guard is checked between the graph-construction and chain-detection
// phases. A trip returns kResourceExhausted / kCancelled — the dynamic
// analogue of the kUnknown verdict.
Result<StrongIndependenceResult> TestStrongIndependence(
    const ast::RecursiveDefinition& def,
    const ExecutionGuard* guard = nullptr);

// Variant reusing an existing graph and chain analysis.
Result<StrongIndependenceResult> TestStrongIndependence(
    const ast::RecursiveDefinition& def, const AvGraph& graph,
    const ChainAnalysis& chains);

}  // namespace dire::core

#endif  // DIRE_CORE_STRONG_H_
