#include "core/equivalence.h"

#include <algorithm>
#include <map>
#include <set>

#include "base/string_util.h"
#include "eval/builtins.h"
#include "eval/evaluator.h"
#include "storage/database.h"

namespace dire::core {
namespace {

// EDB predicates of both programs with their arities.
Result<std::map<std::string, size_t>> EdbSignature(const ast::Program& a,
                                                   const ast::Program& b) {
  std::map<std::string, size_t> out;
  std::set<std::string> heads;
  for (const ast::Program* p : {&a, &b}) {
    for (const ast::Rule& r : p->rules) heads.insert(r.head.predicate);
  }
  for (const ast::Program* p : {&a, &b}) {
    for (const ast::Rule& r : p->rules) {
      for (const ast::Atom& atom : r.body) {
        if (heads.count(atom.predicate) != 0) continue;
        if (eval::IsBuiltinPredicate(atom.predicate)) continue;
        auto [it, inserted] = out.emplace(atom.predicate, atom.arity());
        if (!inserted && it->second != atom.arity()) {
          return Status::InvalidArgument(
              "EDB predicate '" + atom.predicate +
              "' used with two arities across the programs");
        }
      }
    }
  }
  return out;
}

Status FillRandom(storage::Database* db,
                  const std::map<std::string, size_t>& edb, int domain_size,
                  double density, Rng* rng) {
  for (const auto& [pred, arity] : edb) {
    DIRE_ASSIGN_OR_RETURN(storage::Relation * rel,
                          db->GetOrCreate(pred, arity));
    double space = 1.0;
    for (size_t i = 0; i < arity; ++i) space *= domain_size;
    int want = std::max(1, static_cast<int>(space * density));
    want = std::min(want, 64);
    for (int k = 0; k < want; ++k) {
      storage::Tuple t;
      for (size_t i = 0; i < arity; ++i) {
        t.push_back(db->symbols().Intern(StrFormat(
            "c%d", static_cast<int>(rng->Uniform(
                       static_cast<uint64_t>(domain_size))))));
      }
      rel->Insert(t);
    }
  }
  return Status::Ok();
}

}  // namespace

Result<EquivalenceCheckResult> CheckEquivalenceOnRandomDatabases(
    const ast::Program& a, const ast::Program& b, const std::string& target,
    const EquivalenceCheckOptions& options) {
  DIRE_ASSIGN_OR_RETURN(auto edb, EdbSignature(a, b));
  Rng rng(options.seed);

  EquivalenceCheckResult result;
  for (int trial = 0; trial < options.trials; ++trial) {
    storage::Database db_a;
    storage::Database db_b;
    // Use one RNG stream and replay it for the second database so both see
    // identical EDB contents.
    uint64_t trial_seed = rng.Next();
    Rng ra(trial_seed);
    Rng rb(trial_seed);
    DIRE_RETURN_IF_ERROR(FillRandom(&db_a, edb, options.domain_size,
                                    options.tuple_density, &ra));
    DIRE_RETURN_IF_ERROR(FillRandom(&db_b, edb, options.domain_size,
                                    options.tuple_density, &rb));

    eval::Evaluator ea(&db_a);
    eval::Evaluator eb(&db_b);
    Result<eval::EvalStats> sa = ea.Evaluate(a);
    if (!sa.ok()) return sa.status();
    Result<eval::EvalStats> sb = eb.Evaluate(b);
    if (!sb.ok()) return sb.status();

    std::string dump_a = db_a.DumpRelation(target);
    std::string dump_b = db_b.DumpRelation(target);
    if (dump_a != dump_b) {
      result.equivalent = false;
      result.counterexample = StrFormat(
          "trial %d differs:\n--- program A (%zu chars)\n%s--- program B "
          "(%zu chars)\n%s",
          trial, dump_a.size(), dump_a.c_str(), dump_b.size(),
          dump_b.c_str());
      return result;
    }
  }
  return result;
}

}  // namespace dire::core
