#ifndef DIRE_CORE_REWRITE_H_
#define DIRE_CORE_REWRITE_H_

#include <string>
#include <vector>

#include "ast/classify.h"
#include "base/result.h"
#include "core/expansion.h"

namespace dire::core {

struct RewriteOptions {
  // Deepest expansion level to explore.
  int max_depth = 12;
  // Dynamic bound on the whole semi-decision (deadline, cancellation):
  // checked per level here and threaded into the expansion enumeration. A
  // trip surfaces as kResourceExhausted / kCancelled — unlike the
  // max_depth budget, which is an ordinary kInconclusive answer. Not owned.
  const ExecutionGuard* guard = nullptr;
  // Consecutive fully-redundant levels required before declaring the
  // definition bounded. Theorem 2.1 only requires that *eventually* every
  // string is mapped to by an earlier one; the margin guards against
  // definitions that go quiet for a level and then produce new strings.
  int verification_margin = 3;
  // Minimize (compute the core of) each kept string before emitting rules.
  bool minimize_queries = true;
  ExpansionEnumerator::Options expansion;
};

struct RewriteResult {
  enum class Outcome {
    // An equivalent nonrecursive definition was constructed.
    kBounded,
    // The budget ran out before `verification_margin` redundant levels were
    // seen. (Unavoidable in general: boundedness is undecidable.)
    kInconclusive,
  };
  Outcome outcome = Outcome::kInconclusive;

  // Deepest level that contributed a non-redundant string (the n0 of
  // Theorem 2.1); -1 when inconclusive.
  int bound = -1;

  // The equivalent nonrecursive rules "t :- s_i." for the kept strings.
  ast::Program rewritten;

  size_t strings_kept = 0;
  size_t strings_seen = 0;
  std::string note;
};

// The constructive side of Theorem 2.1: enumerates the expansion level by
// level, keeps each string that is not already contained in the union of the
// kept strings (checked by containment mappings, Lemma 2.1 /
// Sagiv–Yannakakis), and stops once `verification_margin` consecutive levels
// add nothing. For definitions proved independent by the §4 tests this
// terminates quickly; for data dependent definitions it returns
// kInconclusive at max_depth.
Result<RewriteResult> BoundedRewrite(const ast::RecursiveDefinition& def,
                                     const RewriteOptions& options = {});

// §6 first application: if the definition is bounded with rewrite bound n0,
// a bottom-up evaluator needs exactly n0 + 1 rounds — no termination test.
// Returns the round count, or kInconclusive.
Result<int> PlanIterationBound(const ast::RecursiveDefinition& def,
                               const RewriteOptions& options = {});

}  // namespace dire::core

#endif  // DIRE_CORE_REWRITE_H_
