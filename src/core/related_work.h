#ifndef DIRE_CORE_RELATED_WORK_H_
#define DIRE_CORE_RELATED_WORK_H_

#include <string>

#include "ast/classify.h"
#include "base/result.h"

namespace dire::core {

// Implementations of the two prior tests the paper compares against in its
// introduction. They serve as baselines: the test suite checks that this
// library's chain-generating-path analysis subsumes both on their own
// classes (the paper's claim of generality).

// ---------------------------------------------------------------------------
// Minker–Nicolas [10] (paper §1): a syntactic class of recursive rules whose
// membership is sufficient for strong data independence. Their class
//   * disallows nondistinguished variables shared between body predicates,
//   * excludes permutations of distinguished variables, except in predicates
//     in which no nondistinguished variable appears.
// ---------------------------------------------------------------------------

struct MinkerNicolasResult {
  bool in_class = false;
  // Only meaningful when in_class: rules in the class are strongly data
  // independent (all resolution branches terminate by subsumption).
  bool independent = false;
  std::string reason;
};

// Checks the Minker–Nicolas class for a single recursive rule.
Result<MinkerNicolasResult> TestMinkerNicolas(
    const ast::RecursiveDefinition& def);

// ---------------------------------------------------------------------------
// Ioannidis [7] (paper §1/§4.2): the alpha-graph. Like the A/V graph but
// with variable nodes only: co-occurrence in a nonrecursive predicate gives
// a weight-0 edge, a recursive-atom position gives a weight-1 edge to the
// head variable of that position. His cycle test (Algorithm 6.1, which the
// paper reuses as phase 2) decides strong data independence for rules in
// which no subset of recursive-atom positions carries a permutation of the
// corresponding head variables.
// ---------------------------------------------------------------------------

struct IoannidisResult {
  // True if the rule is in Ioannidis's class: no subset of argument
  // positions of the recursive body atom holds a permutation of the head
  // variables at the same positions (including the trivial permutation).
  bool in_class = false;
  // The alpha-graph verdict: true iff the alpha-graph has no nonzero-weight
  // cycle reachable from a nondistinguished variable. On the class above
  // this is a necessary and sufficient condition for strong data
  // independence; outside it the alpha-graph loses information (no argument
  // nodes) and is only advisory.
  bool alpha_graph_independent = false;
  std::string reason;
};

Result<IoannidisResult> TestIoannidis(const ast::RecursiveDefinition& def);

}  // namespace dire::core

#endif  // DIRE_CORE_RELATED_WORK_H_
