#include "core/plan_program.h"

#include <map>
#include <set>

#include "ast/classify.h"
#include "ast/dependency.h"
#include "base/string_util.h"
#include "core/weak.h"

namespace dire::core {

const char* ActionName(PredicateReport::Action action) {
  switch (action) {
    case PredicateReport::Action::kRewritten:
      return "rewritten";
    case PredicateReport::Action::kHoisted:
      return "hoisted";
    case PredicateReport::Action::kUnchanged:
      return "unchanged";
    case PredicateReport::Action::kSkipped:
      return "skipped";
  }
  return "unknown";
}

std::string ProgramPlan::Summary() const {
  std::string out;
  for (const PredicateReport& r : reports) {
    out += StrFormat("%-16s %-10s %s\n", r.predicate.c_str(),
                     ActionName(r.action), r.note.c_str());
  }
  return out;
}

namespace {

// Plans one directly-recursive predicate; returns the replacement rules for
// it (or the original rules when nothing applies).
PredicateReport PlanPredicate(const ast::Program& program,
                              const std::string& predicate,
                              const PlanProgramOptions& options,
                              std::vector<ast::Rule>* replacement) {
  PredicateReport report;
  report.predicate = predicate;

  Result<ast::RecursiveDefinition> def =
      ast::MakeDefinition(program, predicate);
  if (!def.ok()) {
    report.note = def.status().message();
    return report;
  }

  Result<StrongIndependenceResult> strong = TestStrongIndependence(*def);
  if (!strong.ok()) {
    report.note = strong.status().message();
    return report;
  }
  report.strong_verdict = strong->verdict;

  bool independent = strong->verdict == Verdict::kIndependent;
  if (!independent && !def->exit_rules.empty()) {
    Result<WeakIndependenceResult> weak = TestWeakIndependence(*def);
    independent = weak.ok() && weak->verdict == Verdict::kIndependent;
  }

  if (independent && options.enable_rewrite) {
    Result<RewriteResult> rewrite = BoundedRewrite(*def, options.rewrite);
    if (rewrite.ok() &&
        rewrite->outcome == RewriteResult::Outcome::kBounded) {
      *replacement = rewrite->rewritten.rules;
      report.action = PredicateReport::Action::kRewritten;
      report.note = StrFormat("data independent; %zu nonrecursive rules "
                              "(bound %d)",
                              replacement->size(), rewrite->bound);
      return report;
    }
    report.action = PredicateReport::Action::kUnchanged;
    report.note =
        "independent but the rewrite budget ran out; kept the recursion";
    return report;
  }

  if (options.enable_hoist) {
    Result<HoistResult> hoist =
        HoistUnconnectedPredicates(*def, options.hoist);
    if (hoist.ok() && hoist->changed) {
      *replacement = hoist->program.rules;
      report.action = PredicateReport::Action::kHoisted;
      report.note = hoist->note;
      return report;
    }
  }

  report.action = PredicateReport::Action::kUnchanged;
  report.note = strong->verdict == Verdict::kDependent
                    ? "data dependent; evaluate with semi-naive"
                    : "no applicable transformation";
  return report;
}

}  // namespace

Result<ProgramPlan> OptimizeProgram(const ast::Program& program,
                                    const PlanProgramOptions& options) {
  ast::DependencyGraph deps(program);

  // Directly recursive predicates in singleton components; mutual recursion
  // is outside the paper's framework and passes through.
  std::set<std::string> candidates;
  std::map<std::string, std::string> skip_reason;
  for (const std::vector<std::string>& stratum : deps.Strata()) {
    for (const std::string& p : stratum) {
      if (!deps.IsRecursive(p)) continue;
      if (stratum.size() > 1) {
        skip_reason[p] = "mutually recursive component";
      } else {
        candidates.insert(p);
      }
    }
  }

  ProgramPlan plan;
  std::map<std::string, std::vector<ast::Rule>> replacements;
  for (const std::string& p : candidates) {
    std::vector<ast::Rule> replacement;
    PredicateReport report =
        PlanPredicate(program, p, options, &replacement);
    if (!replacement.empty()) replacements[p] = std::move(replacement);
    plan.reports.push_back(std::move(report));
  }
  for (const auto& [p, reason] : skip_reason) {
    PredicateReport report;
    report.predicate = p;
    report.action = PredicateReport::Action::kSkipped;
    report.note = reason;
    plan.reports.push_back(std::move(report));
  }

  // Assemble: keep every rule whose head was not replaced; append the
  // replacement rule sets in predicate order.
  std::set<std::string> replaced;
  for (const auto& [p, rules] : replacements) replaced.insert(p);
  for (const ast::Rule& r : program.rules) {
    if (replaced.count(r.head.predicate) == 0) {
      plan.optimized.rules.push_back(r);
    }
  }
  for (const auto& [p, rules] : replacements) {
    for (const ast::Rule& r : rules) plan.optimized.rules.push_back(r);
  }
  return plan;
}

}  // namespace dire::core
