#ifndef DIRE_CORE_AV_GRAPH_H_
#define DIRE_CORE_AV_GRAPH_H_

#include <set>
#include <string>
#include <vector>

#include "ast/classify.h"
#include "base/result.h"

namespace dire::core {

// The argument/variable (A/V) graph of Section 3 of the paper, extended to
// multiple rules as in Section 5, including the exit rules (needed by the
// weak-data-independence tests of Section 4.3).
//
// Nodes are variables (distinguished or nondistinguished) and argument
// positions of body atoms. Edges:
//   * identity edges:    argument node -> node of the variable appearing in
//                        that position;
//   * unification edges: argument node of a *recursive* body atom at
//                        position p -> distinguished variable at position p
//                        of the rule head;
//   * predicate edges:   between adjacent argument positions of each
//                        nonrecursive body atom ("augmented" graph, §4.1).
//
// Traversal is undirected; a unification edge contributes +1 traversed
// forward (argument -> variable) and -1 traversed in reverse; all other
// edges weigh 0 (§3).
class AvGraph {
 public:
  enum class NodeKind { kVariable, kArgument };
  enum class EdgeKind { kIdentity, kUnification, kPredicate };

  struct Node {
    NodeKind kind;
    std::string label;

    // Variable nodes.
    std::string var_name;
    bool distinguished = false;

    // Argument nodes. rule_index counts recursive rules first, then exit
    // rules (matching RuleCount() ordering).
    int rule_index = -1;
    bool in_exit_rule = false;
    int atom_index = -1;  // Body atom index within its rule.
    int position = -1;    // Argument position within the atom.
    std::string predicate;
    bool recursive_atom = false;
  };

  struct Edge {
    EdgeKind kind;
    int from;  // Argument node for identity/unification/predicate edges.
    int to;    // Variable node, or the second argument node for kPredicate.
  };

  // One directed traversal of an edge out of a node.
  struct Step {
    int edge;
    int neighbor;
    int weight;  // +1 / -1 for unification edges by direction, else 0.
  };

  // Builds the A/V graph for a standardized definition. Requires every
  // recursive rule head to be target(head_vars...) — guaranteed by
  // ast::MakeDefinition.
  static Result<AvGraph> Build(const ast::RecursiveDefinition& def);

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }
  int num_recursive_rules() const { return num_recursive_rules_; }
  const std::string& target() const { return target_; }

  // Node id of the variable `name`, or -1.
  int VariableNode(const std::string& name) const;
  // Node id of argument `position` of body atom `atom_index` of rule
  // `rule_index` (recursive rules first, then exit rules), or -1.
  int ArgumentNode(int rule_index, int atom_index, int position) const;

  // All traversals out of `node`. With `augmented` false, predicate edges
  // are omitted (the non-augmented graph of §3).
  const std::vector<Step>& Adjacent(int node, bool augmented) const;

  // Graphviz rendering; `highlight_edges` are drawn bold/red (used to show
  // chain generating paths in the figure reproductions).
  std::string ToDot(const std::set<int>& highlight_edges = {}) const;

 private:
  void AddStep(int from, int to, int edge, int weight, bool augmented_only);

  std::string target_;
  int num_recursive_rules_ = 0;
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<Step>> adjacency_core_;  // Without predicate edges.
  std::vector<std::vector<Step>> adjacency_aug_;   // With predicate edges.
};

}  // namespace dire::core

#endif  // DIRE_CORE_AV_GRAPH_H_
