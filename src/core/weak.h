#ifndef DIRE_CORE_WEAK_H_
#define DIRE_CORE_WEAK_H_

#include <string>

#include "ast/classify.h"
#include "base/result.h"
#include "core/strong.h"

namespace dire::core {

struct WeakIndependenceResult {
  Verdict verdict = Verdict::kUnknown;
  std::string theorem;
  std::string explanation;

  // The three conditions of Theorem 4.3, when the regular-pair test applied.
  bool regular_pair_test_applied = false;
  bool has_chain_generating_path = false;
  bool exit_connected = false;    // Def 4.3.
  bool exit_irredundant = false;  // Def 4.2.
  int irredundance_condition = 0;  // Which clause of Def 4.2 fired (1..4), 0 if none.
};

// Tests weak data independence (Def 2.1) of the full definition (recursive
// rules + the given exit rules):
//
//   * If the recursive rules are strongly data independent, any pairing is
//     weakly independent.
//   * For the paper's decidable class — one regular recursive rule (single
//     nonrecursive body atom) and one exit rule with a single-atom body —
//     Theorem 4.3 decides: the pair is data DEPENDENT iff a chain generating
//     path exists AND the exit predicate is connected to the unbounded chain
//     (Def 4.3) AND the exit predicate is irredundant (Def 4.2); otherwise
//     data independent.
//   * Outside that class the verdict is kUnknown (weak data independence is
//     undecidable in general, Vardi/Gaifman); callers can fall back to the
//     BoundedRewrite semi-decision.
//
// The optional `guard` bounds the analysis (see TestStrongIndependence);
// checked between phases, a trip returns kResourceExhausted / kCancelled.
Result<WeakIndependenceResult> TestWeakIndependence(
    const ast::RecursiveDefinition& def,
    const ExecutionGuard* guard = nullptr);

}  // namespace dire::core

#endif  // DIRE_CORE_WEAK_H_
