#include "core/analysis.h"

#include "base/string_util.h"

namespace dire::core {

Result<RecursionAnalysis> AnalyzeRecursion(const ast::Program& program,
                                           const std::string& target) {
  DIRE_ASSIGN_OR_RETURN(ast::RecursiveDefinition def,
                        ast::MakeDefinition(program, target));
  if (def.recursive_rules.empty()) {
    return Status::InvalidArgument(
        "predicate '" + target +
        "' is not recursive; nothing to analyze (its rules are already "
        "nonrecursive)");
  }
  DIRE_ASSIGN_OR_RETURN(AvGraph graph, AvGraph::Build(def));
  DIRE_ASSIGN_OR_RETURN(ChainAnalysis chains, DetectChains(graph));
  DIRE_ASSIGN_OR_RETURN(StrongIndependenceResult strong,
                        TestStrongIndependence(def, graph, chains));

  RecursionAnalysis out{std::move(def), std::move(graph), std::move(chains),
                        std::move(strong), std::nullopt};
  if (!out.definition.exit_rules.empty()) {
    DIRE_ASSIGN_OR_RETURN(WeakIndependenceResult weak,
                          TestWeakIndependence(out.definition));
    out.weak = std::move(weak);
  }
  return out;
}

std::string RecursionAnalysis::Report() const {
  std::string out;
  out += StrFormat("== Recursion analysis for %s/%zu ==\n",
                   definition.target.c_str(), definition.arity);
  out += StrFormat("recursive rules: %zu, exit rules: %zu\n",
                   definition.recursive_rules.size(),
                   definition.exit_rules.size());
  for (const ast::Rule& r : definition.recursive_rules) {
    out += "  [rec]  " + r.ToString() + "\n";
  }
  for (const ast::Rule& r : definition.exit_rules) {
    out += "  [exit] " + r.ToString() + "\n";
  }
  out += StrFormat("A/V graph: %zu nodes, %zu edges\n", graph.nodes().size(),
                   graph.edges().size());
  if (chains.has_chain_generating_path) {
    out += "chain generating path: YES";
    if (chains.witness.has_value()) {
      out += " — " + chains.witness->ToString(graph);
    }
    out += "\n";
  } else {
    out += "chain generating path: no\n";
  }
  out += StrFormat("strong data independence: %s",
                   VerdictName(strong.verdict));
  if (!strong.theorem.empty()) out += " [" + strong.theorem + "]";
  out += "\n  " + strong.explanation + "\n";
  if (weak.has_value()) {
    out += StrFormat("weak data independence: %s",
                     VerdictName(weak->verdict));
    if (!weak->theorem.empty()) out += " [" + weak->theorem + "]";
    out += "\n  " + weak->explanation + "\n";
    if (weak->regular_pair_test_applied) {
      out += StrFormat(
          "  Theorem 4.3 inputs: cgp=%s connected=%s irredundant=%s",
          weak->has_chain_generating_path ? "yes" : "no",
          weak->exit_connected ? "yes" : "no",
          weak->exit_irredundant ? "yes" : "no");
      if (weak->irredundance_condition != 0) {
        out += StrFormat(" (Def 4.2 clause %d)", weak->irredundance_condition);
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace dire::core
