#ifndef DIRE_CORE_PLAN_PROGRAM_H_
#define DIRE_CORE_PLAN_PROGRAM_H_

#include <string>
#include <vector>

#include "ast/ast.h"
#include "base/result.h"
#include "core/optimize.h"
#include "core/rewrite.h"
#include "core/strong.h"

namespace dire::core {

// The whole-program optimization pass sketched at the close of the paper's
// §6: "testing for chain generating paths and removing predicates from the
// recursive rule ... may be a useful part of a query planning process."
// For every directly recursive predicate whose definition the paper's
// analysis covers, the planner
//   1. runs the boundedness analysis;
//   2. replaces a (strongly or weakly) data independent recursion with its
//      nonrecursive rewrite (Theorem 2.1);
//   3. otherwise hoists chain-unconnected predicates (Theorem 6.1);
//   4. otherwise leaves the definition unchanged.
// Facts, nonrecursive rules, mutually recursive components, and rules
// outside the analyzable class pass through untouched (with a report entry
// saying why).

struct PlanProgramOptions {
  RewriteOptions rewrite;
  HoistOptions hoist;
  // Skip the rewrite step even for independent definitions (useful to
  // isolate hoisting in ablations).
  bool enable_rewrite = true;
  bool enable_hoist = true;
};

struct PredicateReport {
  std::string predicate;
  enum class Action {
    kRewritten,   // Recursion replaced by nonrecursive rules.
    kHoisted,     // Loop-invariant atoms moved out (Theorem 6.1).
    kUnchanged,   // Recursive, but nothing applied.
    kSkipped,     // Outside the analyzable class (reason in `note`).
  };
  Action action = Action::kSkipped;
  Verdict strong_verdict = Verdict::kUnknown;
  std::string note;
};

const char* ActionName(PredicateReport::Action action);

struct ProgramPlan {
  // The equivalent optimized program (original rule order preserved where
  // rules were kept; replacements appended per predicate).
  ast::Program optimized;
  std::vector<PredicateReport> reports;

  // Multi-line summary of what happened per predicate.
  std::string Summary() const;
};

Result<ProgramPlan> OptimizeProgram(const ast::Program& program,
                                    const PlanProgramOptions& options = {});

}  // namespace dire::core

#endif  // DIRE_CORE_PLAN_PROGRAM_H_
