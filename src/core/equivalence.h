#ifndef DIRE_CORE_EQUIVALENCE_H_
#define DIRE_CORE_EQUIVALENCE_H_

#include <string>

#include "ast/ast.h"
#include "base/result.h"
#include "base/rng.h"

namespace dire::core {

struct EquivalenceCheckOptions {
  int trials = 8;          // Random databases to test.
  int domain_size = 5;     // Constants per trial database.
  double tuple_density = 0.4;  // Fill ratio per EDB relation (capped).
  uint64_t seed = 42;
};

struct EquivalenceCheckResult {
  bool equivalent = true;
  std::string counterexample;  // Dump of the first differing trial, if any.
};

// Tests whether `a` and `b` compute the same `target` relation by evaluating
// both on random databases over their EDB predicates. A probabilistic
// falsifier (semantic equivalence of Datalog programs is undecidable): a
// reported difference is a genuine counterexample; agreement on all trials
// is strong but not conclusive evidence. Used as an engineering guard on
// program transformations and heavily in the test suite.
Result<EquivalenceCheckResult> CheckEquivalenceOnRandomDatabases(
    const ast::Program& a, const ast::Program& b, const std::string& target,
    const EquivalenceCheckOptions& options = {});

}  // namespace dire::core

#endif  // DIRE_CORE_EQUIVALENCE_H_
