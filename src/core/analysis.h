#ifndef DIRE_CORE_ANALYSIS_H_
#define DIRE_CORE_ANALYSIS_H_

#include <optional>
#include <string>

#include "ast/ast.h"
#include "ast/classify.h"
#include "base/result.h"
#include "core/av_graph.h"
#include "core/chain.h"
#include "core/strong.h"
#include "core/weak.h"

namespace dire::core {

// One-call front end: everything the paper's algorithms can say about the
// recursive definition of `target` in `program`.
struct RecursionAnalysis {
  ast::RecursiveDefinition definition;
  AvGraph graph;
  ChainAnalysis chains;
  StrongIndependenceResult strong;
  // Present when the definition has exit rules.
  std::optional<WeakIndependenceResult> weak;

  bool strongly_data_independent() const {
    return strong.verdict == Verdict::kIndependent;
  }
  bool weakly_data_independent() const {
    return weak.has_value() && weak->verdict == Verdict::kIndependent;
  }

  // Multi-section human-readable report (rule classes, graph size, chain
  // witness, verdicts with the justifying theorems).
  std::string Report() const;
};

// Extracts, standardizes and analyzes the definition of `target`.
Result<RecursionAnalysis> AnalyzeRecursion(const ast::Program& program,
                                           const std::string& target);

}  // namespace dire::core

#endif  // DIRE_CORE_ANALYSIS_H_
