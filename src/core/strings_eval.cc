#include "core/strings_eval.h"

#include "cq/containment.h"
#include "eval/evaluator.h"

namespace dire::core {

Result<StringEvalStats> EvaluateViaExpansion(
    const ast::RecursiveDefinition& def, storage::Database* db,
    const StringEvalOptions& options) {
  DIRE_ASSIGN_OR_RETURN(ExpansionEnumerator levels,
                        ExpansionEnumerator::Create(def, options.expansion));
  eval::Evaluator evaluator(db);

  StringEvalStats stats;
  int quiet = 0;
  for (int level = 0; level < options.max_levels; ++level) {
    DIRE_ASSIGN_OR_RETURN(std::vector<ExpansionString> strings,
                          levels.NextLevel());
    ++stats.levels;
    std::vector<ast::Rule> rules;
    rules.reserve(strings.size());
    for (const ExpansionString& s : strings) {
      rules.push_back(options.minimize_strings
                          ? cq::Minimize(s.query).ToRule(def.target)
                          : s.query.ToRule(def.target));
    }
    stats.strings += rules.size();
    DIRE_ASSIGN_OR_RETURN(eval::EvalStats pass, evaluator.EvaluateOnce(rules));
    stats.tuples += pass.tuples_derived;
    quiet = pass.tuples_derived == 0 ? quiet + 1 : 0;
    if (quiet >= options.quiet_levels) {
      stats.converged = true;
      break;
    }
  }
  return stats;
}

}  // namespace dire::core
