#ifndef DIRE_CORE_OPTIMIZE_H_
#define DIRE_CORE_OPTIMIZE_H_

#include <string>
#include <vector>

#include "ast/classify.h"
#include "base/result.h"
#include "core/chain.h"
#include "core/equivalence.h"

namespace dire::core {

struct HoistOptions {
  // Name for the auxiliary predicate carrying the stripped recursion;
  // "<target>__core" when empty.
  std::string aux_predicate;
  // Verify the transformation against the original definition on random
  // databases before returning it (engineering guard; the structural
  // soundness conditions are conservative already).
  bool verify = true;
  EquivalenceCheckOptions verify_options;
};

struct HoistResult {
  bool changed = false;

  // Equivalent program. When changed:
  //   target(H) :- <exit body>.                       (one per exit rule)
  //   target(H) :- <hoisted atoms>, <kept atoms>, aux(T).
  //   aux(H)    :- <kept atoms>, aux(T).
  //   aux(H)    :- <exit body>.                       (one per exit rule)
  // so the hoisted atoms are evaluated once per derivation instead of once
  // per recursion level (Theorem 6.1 / the paper's Example 6.1).
  ast::Program program;

  // The atoms moved out of the recursion.
  std::vector<ast::Atom> hoisted;
  std::string aux_predicate;
  std::string note;
};

// §6 loop-invariant hoisting. Detects the nonrecursive atoms of a single
// linear recursive rule that are not connected to any unbounded chain
// (Def 6.1, computed by DetectChains) and, for those that additionally pass
// a structural stability check (each variable either rides a weight-1 cycle
// of distinguished variables, or lives in a variable component private to
// hoisted atoms), rewrites the definition so they are evaluated a bounded
// number of times (Theorem 6.1). Returns changed == false (with a note)
// when nothing can be hoisted.
Result<HoistResult> HoistUnconnectedPredicates(
    const ast::RecursiveDefinition& def, const HoistOptions& options = {});

}  // namespace dire::core

#endif  // DIRE_CORE_OPTIMIZE_H_
