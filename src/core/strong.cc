#include "core/strong.h"

#include "base/obs.h"
#include "base/string_util.h"

namespace dire::core {

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kIndependent:
      return "data independent";
    case Verdict::kDependent:
      return "data dependent";
    case Verdict::kUnknown:
      return "unknown";
  }
  return "unknown";
}

Result<StrongIndependenceResult> TestStrongIndependence(
    const ast::RecursiveDefinition& def, const ExecutionGuard* guard) {
  obs::Span span("detect.strong", "core");
  span.Attr("target", def.target);
  obs::GetCounter("dire_detect_strong_tests_total",
                  "Strong data-independence tests run")
      ->Add(1);
  if (guard != nullptr) DIRE_RETURN_IF_ERROR(guard->Check());
  DIRE_ASSIGN_OR_RETURN(AvGraph graph, AvGraph::Build(def));
  if (guard != nullptr) DIRE_RETURN_IF_ERROR(guard->Check());
  DIRE_ASSIGN_OR_RETURN(ChainAnalysis chains, DetectChains(graph));
  if (guard != nullptr) DIRE_RETURN_IF_ERROR(guard->Check());
  return TestStrongIndependence(def, graph, chains);
}

Result<StrongIndependenceResult> TestStrongIndependence(
    const ast::RecursiveDefinition& def, const AvGraph& graph,
    const ChainAnalysis& chains) {
  if (def.recursive_rules.empty()) {
    return Status::InvalidArgument(
        "strong data independence concerns recursive rules; none given");
  }
  if (!def.AllRecursiveRulesLinear()) {
    StrongIndependenceResult out;
    out.verdict = Verdict::kUnknown;
    out.explanation =
        "the paper's chain-generating-path analysis covers linear recursive "
        "rules; a nonlinear rule is present";
    out.chains = chains;
    return out;
  }

  StrongIndependenceResult out;
  out.chains = chains;
  bool single = def.recursive_rules.size() == 1;

  if (!chains.has_chain_generating_path) {
    out.verdict = Verdict::kIndependent;
    out.theorem = single ? "Theorem 4.1" : "Theorem 5.1";
    out.explanation = StrFormat(
        "no chain generating path in the augmented A/V graph; by %s the "
        "recursive %s strongly data independent",
        out.theorem.c_str(), single ? "rule is" : "rules are");
    return out;
  }

  if (!chains.exact) {
    out.verdict = Verdict::kUnknown;
    out.explanation =
        "a chain generating structure may exist (" + chains.note + ")";
    return out;
  }

  std::string witness =
      chains.witness.has_value() ? chains.witness->ToString(graph) : "";

  if (single && !ast::HasRepeatedNonrecursivePredicate(
                    def.recursive_rules.front(), def.target)) {
    out.verdict = Verdict::kDependent;
    out.theorem = "Theorem 4.2";
    out.explanation = StrFormat(
        "chain generating path found (%s) and the rule has no repeated "
        "nonrecursive predicate; by Theorem 4.2 it is not strongly data "
        "independent",
        witness.c_str());
    return out;
  }

  out.verdict = Verdict::kUnknown;
  out.explanation = StrFormat(
      "chain generating path found (%s), but the chain test is incomplete "
      "for this class (%s); see the paper's Example 4.4 and the "
      "Mairson–Sagiv undecidability result",
      witness.c_str(),
      single ? "repeated nonrecursive predicates" : "multiple recursive rules");
  return out;
}

}  // namespace dire::core
