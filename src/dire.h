#ifndef DIRE_DIRE_H_
#define DIRE_DIRE_H_

// DIRE — Data Independent Recursion Engine.
//
// Umbrella header for the public API. The library reproduces
//   Jeff Naughton, "Data Independent Recursion in Deductive Databases",
//   PODS 1986,
// on top of a self-contained Datalog substrate:
//
//   ast/      rules, programs, substitutions, rule classification
//   parser/   Datalog text -> ast::Program
//   storage/  relations, database, workload generators
//   eval/     naive and semi-naive bottom-up evaluation
//   cq/       conjunctive queries, containment mappings
//   core/     the paper: ExpandRule, A/V graphs, chain generating paths,
//             strong/weak data independence, bounded rewrite, §6 optimizer

#include "ast/ast.h"
#include "ast/classify.h"
#include "ast/dependency.h"
#include "ast/substitution.h"
#include "ast/unify.h"
#include "base/failpoints.h"
#include "base/guard.h"
#include "base/result.h"
#include "base/rng.h"
#include "base/status.h"
#include "base/string_util.h"
#include "core/analysis.h"
#include "core/av_graph.h"
#include "core/chain.h"
#include "core/equivalence.h"
#include "core/expansion.h"
#include "core/graph_view.h"
#include "core/optimize.h"
#include "core/plan_program.h"
#include "core/rewrite.h"
#include "core/strong.h"
#include "core/weak.h"
#include "cq/conjunctive_query.h"
#include "cq/containment.h"
#include "eval/evaluator.h"
#include "eval/plan.h"
#include "parser/parser.h"
#include "storage/csv.h"
#include "storage/database.h"
#include "storage/generators.h"

#endif  // DIRE_DIRE_H_
