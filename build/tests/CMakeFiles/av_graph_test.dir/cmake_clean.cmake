file(REMOVE_RECURSE
  "CMakeFiles/av_graph_test.dir/av_graph_test.cc.o"
  "CMakeFiles/av_graph_test.dir/av_graph_test.cc.o.d"
  "av_graph_test"
  "av_graph_test.pdb"
  "av_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
