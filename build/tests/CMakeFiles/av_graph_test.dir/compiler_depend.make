# Empty compiler generated dependencies file for av_graph_test.
# This may be replaced when dependencies are built.
