# Empty compiler generated dependencies file for eval_options_property_test.
# This may be replaced when dependencies are built.
