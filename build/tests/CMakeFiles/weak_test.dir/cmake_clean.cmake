file(REMOVE_RECURSE
  "CMakeFiles/weak_test.dir/weak_test.cc.o"
  "CMakeFiles/weak_test.dir/weak_test.cc.o.d"
  "weak_test"
  "weak_test.pdb"
  "weak_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weak_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
