# Empty compiler generated dependencies file for weak_test.
# This may be replaced when dependencies are built.
