file(REMOVE_RECURSE
  "CMakeFiles/magic_property_test.dir/magic_property_test.cc.o"
  "CMakeFiles/magic_property_test.dir/magic_property_test.cc.o.d"
  "magic_property_test"
  "magic_property_test.pdb"
  "magic_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/magic_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
