file(REMOVE_RECURSE
  "CMakeFiles/plan_program_test.dir/plan_program_test.cc.o"
  "CMakeFiles/plan_program_test.dir/plan_program_test.cc.o.d"
  "plan_program_test"
  "plan_program_test.pdb"
  "plan_program_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_program_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
