# Empty dependencies file for plan_program_test.
# This may be replaced when dependencies are built.
