file(REMOVE_RECURSE
  "CMakeFiles/graph_view_test.dir/graph_view_test.cc.o"
  "CMakeFiles/graph_view_test.dir/graph_view_test.cc.o.d"
  "graph_view_test"
  "graph_view_test.pdb"
  "graph_view_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_view_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
