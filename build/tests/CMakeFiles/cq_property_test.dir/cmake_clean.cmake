file(REMOVE_RECURSE
  "CMakeFiles/cq_property_test.dir/cq_property_test.cc.o"
  "CMakeFiles/cq_property_test.dir/cq_property_test.cc.o.d"
  "cq_property_test"
  "cq_property_test.pdb"
  "cq_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cq_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
