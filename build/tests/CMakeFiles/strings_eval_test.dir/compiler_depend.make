# Empty compiler generated dependencies file for strings_eval_test.
# This may be replaced when dependencies are built.
