file(REMOVE_RECURSE
  "CMakeFiles/strings_eval_test.dir/strings_eval_test.cc.o"
  "CMakeFiles/strings_eval_test.dir/strings_eval_test.cc.o.d"
  "strings_eval_test"
  "strings_eval_test.pdb"
  "strings_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strings_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
