# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hoist_property_test.
