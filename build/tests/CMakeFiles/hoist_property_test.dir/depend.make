# Empty dependencies file for hoist_property_test.
# This may be replaced when dependencies are built.
