file(REMOVE_RECURSE
  "CMakeFiles/hoist_property_test.dir/hoist_property_test.cc.o"
  "CMakeFiles/hoist_property_test.dir/hoist_property_test.cc.o.d"
  "hoist_property_test"
  "hoist_property_test.pdb"
  "hoist_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hoist_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
