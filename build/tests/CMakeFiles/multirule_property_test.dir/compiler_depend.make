# Empty compiler generated dependencies file for multirule_property_test.
# This may be replaced when dependencies are built.
