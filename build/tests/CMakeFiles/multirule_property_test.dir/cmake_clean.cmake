file(REMOVE_RECURSE
  "CMakeFiles/multirule_property_test.dir/multirule_property_test.cc.o"
  "CMakeFiles/multirule_property_test.dir/multirule_property_test.cc.o.d"
  "multirule_property_test"
  "multirule_property_test.pdb"
  "multirule_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirule_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
