file(REMOVE_RECURSE
  "CMakeFiles/bench_bounded_vs_recursive.dir/bench_bounded_vs_recursive.cc.o"
  "CMakeFiles/bench_bounded_vs_recursive.dir/bench_bounded_vs_recursive.cc.o.d"
  "bench_bounded_vs_recursive"
  "bench_bounded_vs_recursive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bounded_vs_recursive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
