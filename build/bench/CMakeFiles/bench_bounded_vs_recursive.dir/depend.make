# Empty dependencies file for bench_bounded_vs_recursive.
# This may be replaced when dependencies are built.
