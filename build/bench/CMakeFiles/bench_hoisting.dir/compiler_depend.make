# Empty compiler generated dependencies file for bench_hoisting.
# This may be replaced when dependencies are built.
