file(REMOVE_RECURSE
  "CMakeFiles/bench_hoisting.dir/bench_hoisting.cc.o"
  "CMakeFiles/bench_hoisting.dir/bench_hoisting.cc.o.d"
  "bench_hoisting"
  "bench_hoisting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hoisting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
