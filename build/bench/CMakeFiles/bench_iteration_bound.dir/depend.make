# Empty dependencies file for bench_iteration_bound.
# This may be replaced when dependencies are built.
