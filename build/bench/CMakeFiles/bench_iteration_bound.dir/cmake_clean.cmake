file(REMOVE_RECURSE
  "CMakeFiles/bench_iteration_bound.dir/bench_iteration_bound.cc.o"
  "CMakeFiles/bench_iteration_bound.dir/bench_iteration_bound.cc.o.d"
  "bench_iteration_bound"
  "bench_iteration_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iteration_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
