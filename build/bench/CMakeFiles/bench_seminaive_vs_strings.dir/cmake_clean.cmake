file(REMOVE_RECURSE
  "CMakeFiles/bench_seminaive_vs_strings.dir/bench_seminaive_vs_strings.cc.o"
  "CMakeFiles/bench_seminaive_vs_strings.dir/bench_seminaive_vs_strings.cc.o.d"
  "bench_seminaive_vs_strings"
  "bench_seminaive_vs_strings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seminaive_vs_strings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
