# Empty dependencies file for bench_seminaive_vs_strings.
# This may be replaced when dependencies are built.
