# Empty dependencies file for repro_figures.
# This may be replaced when dependencies are built.
