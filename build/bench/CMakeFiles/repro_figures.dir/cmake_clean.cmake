file(REMOVE_RECURSE
  "CMakeFiles/repro_figures.dir/repro_figures.cc.o"
  "CMakeFiles/repro_figures.dir/repro_figures.cc.o.d"
  "repro_figures"
  "repro_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
