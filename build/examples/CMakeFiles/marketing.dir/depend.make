# Empty dependencies file for marketing.
# This may be replaced when dependencies are built.
