file(REMOVE_RECURSE
  "CMakeFiles/marketing.dir/marketing.cpp.o"
  "CMakeFiles/marketing.dir/marketing.cpp.o.d"
  "marketing"
  "marketing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/marketing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
