# Empty compiler generated dependencies file for genealogy.
# This may be replaced when dependencies are built.
