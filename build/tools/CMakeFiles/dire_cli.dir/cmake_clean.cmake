file(REMOVE_RECURSE
  "CMakeFiles/dire_cli.dir/dire_cli.cc.o"
  "CMakeFiles/dire_cli.dir/dire_cli.cc.o.d"
  "dire_cli"
  "dire_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dire_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
