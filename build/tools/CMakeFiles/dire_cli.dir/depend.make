# Empty dependencies file for dire_cli.
# This may be replaced when dependencies are built.
