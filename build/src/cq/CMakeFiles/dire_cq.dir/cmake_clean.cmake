file(REMOVE_RECURSE
  "CMakeFiles/dire_cq.dir/conjunctive_query.cc.o"
  "CMakeFiles/dire_cq.dir/conjunctive_query.cc.o.d"
  "CMakeFiles/dire_cq.dir/containment.cc.o"
  "CMakeFiles/dire_cq.dir/containment.cc.o.d"
  "libdire_cq.a"
  "libdire_cq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dire_cq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
