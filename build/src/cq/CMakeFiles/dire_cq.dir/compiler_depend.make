# Empty compiler generated dependencies file for dire_cq.
# This may be replaced when dependencies are built.
