file(REMOVE_RECURSE
  "libdire_cq.a"
)
