
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cq/conjunctive_query.cc" "src/cq/CMakeFiles/dire_cq.dir/conjunctive_query.cc.o" "gcc" "src/cq/CMakeFiles/dire_cq.dir/conjunctive_query.cc.o.d"
  "/root/repo/src/cq/containment.cc" "src/cq/CMakeFiles/dire_cq.dir/containment.cc.o" "gcc" "src/cq/CMakeFiles/dire_cq.dir/containment.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/dire_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/dire_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
