# Empty compiler generated dependencies file for dire_ast.
# This may be replaced when dependencies are built.
