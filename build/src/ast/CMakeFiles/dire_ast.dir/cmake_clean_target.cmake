file(REMOVE_RECURSE
  "libdire_ast.a"
)
