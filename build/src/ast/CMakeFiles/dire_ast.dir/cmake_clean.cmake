file(REMOVE_RECURSE
  "CMakeFiles/dire_ast.dir/ast.cc.o"
  "CMakeFiles/dire_ast.dir/ast.cc.o.d"
  "CMakeFiles/dire_ast.dir/classify.cc.o"
  "CMakeFiles/dire_ast.dir/classify.cc.o.d"
  "CMakeFiles/dire_ast.dir/dependency.cc.o"
  "CMakeFiles/dire_ast.dir/dependency.cc.o.d"
  "CMakeFiles/dire_ast.dir/substitution.cc.o"
  "CMakeFiles/dire_ast.dir/substitution.cc.o.d"
  "CMakeFiles/dire_ast.dir/unify.cc.o"
  "CMakeFiles/dire_ast.dir/unify.cc.o.d"
  "libdire_ast.a"
  "libdire_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dire_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
