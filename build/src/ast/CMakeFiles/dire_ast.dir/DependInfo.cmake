
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/ast.cc" "src/ast/CMakeFiles/dire_ast.dir/ast.cc.o" "gcc" "src/ast/CMakeFiles/dire_ast.dir/ast.cc.o.d"
  "/root/repo/src/ast/classify.cc" "src/ast/CMakeFiles/dire_ast.dir/classify.cc.o" "gcc" "src/ast/CMakeFiles/dire_ast.dir/classify.cc.o.d"
  "/root/repo/src/ast/dependency.cc" "src/ast/CMakeFiles/dire_ast.dir/dependency.cc.o" "gcc" "src/ast/CMakeFiles/dire_ast.dir/dependency.cc.o.d"
  "/root/repo/src/ast/substitution.cc" "src/ast/CMakeFiles/dire_ast.dir/substitution.cc.o" "gcc" "src/ast/CMakeFiles/dire_ast.dir/substitution.cc.o.d"
  "/root/repo/src/ast/unify.cc" "src/ast/CMakeFiles/dire_ast.dir/unify.cc.o" "gcc" "src/ast/CMakeFiles/dire_ast.dir/unify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/dire_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
