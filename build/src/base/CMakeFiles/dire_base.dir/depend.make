# Empty dependencies file for dire_base.
# This may be replaced when dependencies are built.
