file(REMOVE_RECURSE
  "CMakeFiles/dire_base.dir/status.cc.o"
  "CMakeFiles/dire_base.dir/status.cc.o.d"
  "CMakeFiles/dire_base.dir/string_util.cc.o"
  "CMakeFiles/dire_base.dir/string_util.cc.o.d"
  "libdire_base.a"
  "libdire_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dire_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
