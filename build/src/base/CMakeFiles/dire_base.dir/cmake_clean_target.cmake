file(REMOVE_RECURSE
  "libdire_base.a"
)
