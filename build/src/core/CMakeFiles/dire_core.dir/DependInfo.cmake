
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/core/CMakeFiles/dire_core.dir/analysis.cc.o" "gcc" "src/core/CMakeFiles/dire_core.dir/analysis.cc.o.d"
  "/root/repo/src/core/av_graph.cc" "src/core/CMakeFiles/dire_core.dir/av_graph.cc.o" "gcc" "src/core/CMakeFiles/dire_core.dir/av_graph.cc.o.d"
  "/root/repo/src/core/chain.cc" "src/core/CMakeFiles/dire_core.dir/chain.cc.o" "gcc" "src/core/CMakeFiles/dire_core.dir/chain.cc.o.d"
  "/root/repo/src/core/equivalence.cc" "src/core/CMakeFiles/dire_core.dir/equivalence.cc.o" "gcc" "src/core/CMakeFiles/dire_core.dir/equivalence.cc.o.d"
  "/root/repo/src/core/expansion.cc" "src/core/CMakeFiles/dire_core.dir/expansion.cc.o" "gcc" "src/core/CMakeFiles/dire_core.dir/expansion.cc.o.d"
  "/root/repo/src/core/graph_view.cc" "src/core/CMakeFiles/dire_core.dir/graph_view.cc.o" "gcc" "src/core/CMakeFiles/dire_core.dir/graph_view.cc.o.d"
  "/root/repo/src/core/optimize.cc" "src/core/CMakeFiles/dire_core.dir/optimize.cc.o" "gcc" "src/core/CMakeFiles/dire_core.dir/optimize.cc.o.d"
  "/root/repo/src/core/plan_program.cc" "src/core/CMakeFiles/dire_core.dir/plan_program.cc.o" "gcc" "src/core/CMakeFiles/dire_core.dir/plan_program.cc.o.d"
  "/root/repo/src/core/related_work.cc" "src/core/CMakeFiles/dire_core.dir/related_work.cc.o" "gcc" "src/core/CMakeFiles/dire_core.dir/related_work.cc.o.d"
  "/root/repo/src/core/rewrite.cc" "src/core/CMakeFiles/dire_core.dir/rewrite.cc.o" "gcc" "src/core/CMakeFiles/dire_core.dir/rewrite.cc.o.d"
  "/root/repo/src/core/strings_eval.cc" "src/core/CMakeFiles/dire_core.dir/strings_eval.cc.o" "gcc" "src/core/CMakeFiles/dire_core.dir/strings_eval.cc.o.d"
  "/root/repo/src/core/strong.cc" "src/core/CMakeFiles/dire_core.dir/strong.cc.o" "gcc" "src/core/CMakeFiles/dire_core.dir/strong.cc.o.d"
  "/root/repo/src/core/weak.cc" "src/core/CMakeFiles/dire_core.dir/weak.cc.o" "gcc" "src/core/CMakeFiles/dire_core.dir/weak.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/dire_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/dire_base.dir/DependInfo.cmake"
  "/root/repo/build/src/cq/CMakeFiles/dire_cq.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/dire_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dire_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
