file(REMOVE_RECURSE
  "CMakeFiles/dire_core.dir/analysis.cc.o"
  "CMakeFiles/dire_core.dir/analysis.cc.o.d"
  "CMakeFiles/dire_core.dir/av_graph.cc.o"
  "CMakeFiles/dire_core.dir/av_graph.cc.o.d"
  "CMakeFiles/dire_core.dir/chain.cc.o"
  "CMakeFiles/dire_core.dir/chain.cc.o.d"
  "CMakeFiles/dire_core.dir/equivalence.cc.o"
  "CMakeFiles/dire_core.dir/equivalence.cc.o.d"
  "CMakeFiles/dire_core.dir/expansion.cc.o"
  "CMakeFiles/dire_core.dir/expansion.cc.o.d"
  "CMakeFiles/dire_core.dir/graph_view.cc.o"
  "CMakeFiles/dire_core.dir/graph_view.cc.o.d"
  "CMakeFiles/dire_core.dir/optimize.cc.o"
  "CMakeFiles/dire_core.dir/optimize.cc.o.d"
  "CMakeFiles/dire_core.dir/plan_program.cc.o"
  "CMakeFiles/dire_core.dir/plan_program.cc.o.d"
  "CMakeFiles/dire_core.dir/related_work.cc.o"
  "CMakeFiles/dire_core.dir/related_work.cc.o.d"
  "CMakeFiles/dire_core.dir/rewrite.cc.o"
  "CMakeFiles/dire_core.dir/rewrite.cc.o.d"
  "CMakeFiles/dire_core.dir/strings_eval.cc.o"
  "CMakeFiles/dire_core.dir/strings_eval.cc.o.d"
  "CMakeFiles/dire_core.dir/strong.cc.o"
  "CMakeFiles/dire_core.dir/strong.cc.o.d"
  "CMakeFiles/dire_core.dir/weak.cc.o"
  "CMakeFiles/dire_core.dir/weak.cc.o.d"
  "libdire_core.a"
  "libdire_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dire_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
