# Empty compiler generated dependencies file for dire_core.
# This may be replaced when dependencies are built.
