file(REMOVE_RECURSE
  "libdire_core.a"
)
