# Empty compiler generated dependencies file for dire_eval.
# This may be replaced when dependencies are built.
