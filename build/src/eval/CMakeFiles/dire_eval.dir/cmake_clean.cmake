file(REMOVE_RECURSE
  "CMakeFiles/dire_eval.dir/builtins.cc.o"
  "CMakeFiles/dire_eval.dir/builtins.cc.o.d"
  "CMakeFiles/dire_eval.dir/evaluator.cc.o"
  "CMakeFiles/dire_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/dire_eval.dir/explain.cc.o"
  "CMakeFiles/dire_eval.dir/explain.cc.o.d"
  "CMakeFiles/dire_eval.dir/magic.cc.o"
  "CMakeFiles/dire_eval.dir/magic.cc.o.d"
  "CMakeFiles/dire_eval.dir/plan.cc.o"
  "CMakeFiles/dire_eval.dir/plan.cc.o.d"
  "CMakeFiles/dire_eval.dir/provenance.cc.o"
  "CMakeFiles/dire_eval.dir/provenance.cc.o.d"
  "CMakeFiles/dire_eval.dir/topdown.cc.o"
  "CMakeFiles/dire_eval.dir/topdown.cc.o.d"
  "libdire_eval.a"
  "libdire_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dire_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
