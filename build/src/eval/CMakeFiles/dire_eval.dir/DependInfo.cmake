
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/builtins.cc" "src/eval/CMakeFiles/dire_eval.dir/builtins.cc.o" "gcc" "src/eval/CMakeFiles/dire_eval.dir/builtins.cc.o.d"
  "/root/repo/src/eval/evaluator.cc" "src/eval/CMakeFiles/dire_eval.dir/evaluator.cc.o" "gcc" "src/eval/CMakeFiles/dire_eval.dir/evaluator.cc.o.d"
  "/root/repo/src/eval/explain.cc" "src/eval/CMakeFiles/dire_eval.dir/explain.cc.o" "gcc" "src/eval/CMakeFiles/dire_eval.dir/explain.cc.o.d"
  "/root/repo/src/eval/magic.cc" "src/eval/CMakeFiles/dire_eval.dir/magic.cc.o" "gcc" "src/eval/CMakeFiles/dire_eval.dir/magic.cc.o.d"
  "/root/repo/src/eval/plan.cc" "src/eval/CMakeFiles/dire_eval.dir/plan.cc.o" "gcc" "src/eval/CMakeFiles/dire_eval.dir/plan.cc.o.d"
  "/root/repo/src/eval/provenance.cc" "src/eval/CMakeFiles/dire_eval.dir/provenance.cc.o" "gcc" "src/eval/CMakeFiles/dire_eval.dir/provenance.cc.o.d"
  "/root/repo/src/eval/topdown.cc" "src/eval/CMakeFiles/dire_eval.dir/topdown.cc.o" "gcc" "src/eval/CMakeFiles/dire_eval.dir/topdown.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ast/CMakeFiles/dire_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/dire_base.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/dire_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
