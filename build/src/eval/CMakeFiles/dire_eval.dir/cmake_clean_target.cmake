file(REMOVE_RECURSE
  "libdire_eval.a"
)
