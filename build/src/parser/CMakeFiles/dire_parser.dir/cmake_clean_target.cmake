file(REMOVE_RECURSE
  "libdire_parser.a"
)
