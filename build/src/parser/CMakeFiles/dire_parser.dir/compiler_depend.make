# Empty compiler generated dependencies file for dire_parser.
# This may be replaced when dependencies are built.
