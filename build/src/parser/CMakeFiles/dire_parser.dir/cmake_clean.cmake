file(REMOVE_RECURSE
  "CMakeFiles/dire_parser.dir/lexer.cc.o"
  "CMakeFiles/dire_parser.dir/lexer.cc.o.d"
  "CMakeFiles/dire_parser.dir/parser.cc.o"
  "CMakeFiles/dire_parser.dir/parser.cc.o.d"
  "libdire_parser.a"
  "libdire_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dire_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
