file(REMOVE_RECURSE
  "CMakeFiles/dire_storage.dir/csv.cc.o"
  "CMakeFiles/dire_storage.dir/csv.cc.o.d"
  "CMakeFiles/dire_storage.dir/database.cc.o"
  "CMakeFiles/dire_storage.dir/database.cc.o.d"
  "CMakeFiles/dire_storage.dir/generators.cc.o"
  "CMakeFiles/dire_storage.dir/generators.cc.o.d"
  "CMakeFiles/dire_storage.dir/relation.cc.o"
  "CMakeFiles/dire_storage.dir/relation.cc.o.d"
  "CMakeFiles/dire_storage.dir/snapshot.cc.o"
  "CMakeFiles/dire_storage.dir/snapshot.cc.o.d"
  "libdire_storage.a"
  "libdire_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dire_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
