# Empty compiler generated dependencies file for dire_storage.
# This may be replaced when dependencies are built.
