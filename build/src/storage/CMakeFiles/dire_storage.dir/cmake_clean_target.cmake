file(REMOVE_RECURSE
  "libdire_storage.a"
)
