// dire_cli — command-line driver for the DIRE library.
//
// Usage:
//   dire_cli PROGRAM.dl [options]
//
// Options (applied in the order given):
//   --plan                run the whole-program optimizer (rewrites bounded
//                         recursions, hoists loop invariants) and print what
//                         happened per predicate
//   --analyze PRED        print the full recursion analysis report
//   --rewrite PRED        print the bounded nonrecursive rewrite (if any)
//   --hoist PRED          print the §6 hoisted program (if applicable)
//   --explain             print physical plans for every rule; after an
//                         --eval the plans are compiled against the live
//                         relation statistics under the active planner and
//                         annotated with estimated vs observed cardinality
//                         per atom
//   --eval                evaluate the program bottom-up (semi-naive)
//   --naive               use naive instead of semi-naive evaluation
//   --query 'ATOM'        answer a query with magic sets, e.g. 't(a, X)'
//   --why 'FACT'          print a derivation tree for a ground fact
//                         (after --eval), e.g. 't(a, c)'
//   --dump PRED           print a relation after --eval / --query
//   --dot PRED FILE       write the A/V graph of PRED's definition as DOT
//   --repl                interactive session: `?- atom.` queries (magic
//                         sets), `fact.`/`rule.` additions, `.analyze P`,
//                         `.plan`, `.dump P`, `.why fact`, `.quit`
//
// Parallelism:
//   --threads N           worker threads for rule execution (default 1).
//                         Results are byte-identical to --threads=1: each
//                         large firing partitions its driving scan over
//                         frozen relation views and merges in chunk order
//
// Join planning:
//   --planner=MODE        cost (default): order each rule's joins by
//                         estimated cardinality from live relation
//                         statistics; greedy: the statistics-free
//                         bound-count ordering. Derived results are
//                         byte-identical either way — only join order,
//                         and thus evaluation time, changes
//   --replan-threshold=X  recompile a recursive stratum's delta plans when
//                         a relation they read grows or shrinks by more
//                         than this factor since planning (default 4,
//                         must be > 1; cost planner only)
//
// Resource governance (applies to each later --eval / --query):
//   --timeout-ms N        wall-clock budget per evaluation
//   --max-tuples N        budget on derived tuples
//   --max-memory-mb N     budget on approximate relation memory
//   --on-exhaustion=MODE  error (default): exit with ResourceExhausted;
//                         partial: report the sound prefix computed so far
//
// Durability (crash-safe persistence):
//   --data-dir DIR        open DIR as a durable database (checksummed
//                         snapshot + write-ahead log); later --eval runs
//                         checkpoint into it and later --add appends go
//                         through the WAL
//   --checkpoint-every-rounds N
//                         also checkpoint every N fixpoint rounds (with the
//                         semi-naive delta frontier, so recovery resumes
//                         mid-stratum); 0 (default) checkpoints only at
//                         stratum boundaries and completion
//   --add 'FACT'          durably append a ground fact, e.g. 'e(a, b)'
//                         (requires --data-dir; fsynced before acknowledged)
//   --retract 'FACT'      durably retract a ground base fact
//   --maintain            later --add/--retract also update the derived
//                         relations incrementally (counting + DRed) instead
//                         of leaving them stale until the next --eval;
//                         requires the database to be at the program's
//                         fixpoint first
//
// Recovery after a crash:
//   dire_cli recover PROGRAM.dl --data-dir DIR [--dump PRED] ...
//                         replay the WAL over the last committed snapshot,
//                         then resume evaluation from the checkpointed
//                         stratum and finish the fixpoint
//
// Serving (long-lived, overload-safe server; see src/server/server.h and
// DESIGN.md "Serving & overload behavior"):
//   dire_cli serve PROGRAM.dl --data-dir DIR [--listen HOST:PORT]
//     --listen HOST:PORT        IPv4 listen address (default 127.0.0.1:0;
//                               port 0 = kernel-assigned, printed on stdout)
//     --port-file FILE          also write the bound port to FILE (tests)
//     --max-inflight N          concurrent request executions (default 4)
//     --max-queue N             admitted requests allowed to wait beyond the
//                               inflight ones (default 16); anything beyond
//                               is shed with OVERLOADED, not delayed
//     --retry-after-ms N        backoff hint in OVERLOADED/NOTREADY lines
//     --max-query-cost N        refuse queries priced above N estimated
//                               rows scanned (0 = unpriced)
//     --request-timeout-ms N    per-request deadline (ExecutionGuard)
//     --request-max-tuples N    per-request tuple budget
//     --on-exhaustion=partial   answer guard-tripped queries with PARTIAL +
//                               the sound prefix instead of ERROR
//     --checkpoint-every-writes N
//                               fold the WAL into a fresh snapshot every N
//                               durable writes (default 32; plus once at
//                               SIGTERM shutdown)
//     --no-maintain             disable incremental view maintenance: every
//                               write re-derives consequences from the base
//                               facts (retractions drop and rebuild all
//                               derived relations, so their full derived
//                               size counts against --request-max-tuples);
//                               --maintain (default) restores it
//     --threads N               worker threads inside each evaluation
//     --crash-at SITE[:SKIP]    chaos testing: SIGKILL the process at the
//                               named failpoint site's (SKIP+1)-th hit,
//                               exactly like a power loss there
//     --idle-timeout-ms N       close client connections idle this long
//                               (0 = never; replication streams exempt)
//     --retry-jitter-seed N     seed of the deterministic jitter applied to
//                               OVERLOADED/NOTREADY retry-after hints
//     --replicate-from HOST:PORT
//                               start as a read-only hot standby of the
//                               primary at HOST:PORT: stream its committed
//                               WAL, answer QUERY/STATS/HEALTH, reject
//                               writes with READONLY, take over on PROMOTE
//     --replication-ack-timeout-ms N
//                               primary: wait this long for every
//                               follower's durable ACK before a write is
//                               acknowledged (laggards are disconnected);
//                               0 ships asynchronously
//     --replication-heartbeat-ms N
//                               idle-stream heartbeat / reconnect cadence
//     --http-port N             also serve observability HTTP on this port
//                               (GET /metrics /healthz /statusz /tracez;
//                               0 = kernel-assigned; own acceptor thread off
//                               the admission path, so it answers even
//                               while the server is saturated or NOTREADY)
//     --http-port-file FILE     also write the bound HTTP port to FILE
//     --access-log PATH         structured JSON access log, one line per
//                               request ("-" = stderr); HEALTH/STATS
//                               probes are not logged
//     --slow-query-ms N         requests executing longer than N ms log
//                               their join orders with estimated vs actual
//                               cardinalities (0 = off)
//
// Replication operations (see DESIGN.md "Replication & failover"):
//   dire_cli promote HOST:PORT [--epoch N] [--fence-dir DIR]
//                         ask the follower at HOST:PORT to take over as
//                         primary (epoch auto-bumps unless --epoch given);
//                         with --fence-dir, durably fence the old primary's
//                         data directory at the new epoch so it fails
//                         closed if it ever restarts
//
// Offline integrity scrub:
//   dire_cli verify --data-dir DIR [--allow-torn-tail]
//                         verify every checksum in DIR without opening it
//                         for writing: the snapshot's section and commit
//                         CRCs, every WAL frame CRC and record payload, and
//                         the replstate file. A torn tail (crash damage
//                         reaching EOF — what a power loss legitimately
//                         leaves) fails the scrub unless --allow-torn-tail;
//                         mid-file damage always fails. Exit 0 only when
//                         everything verifies.
//
// Observability (recognized anywhere, both forms):
//   --trace-out=FILE      write a Chrome trace_event JSON of the whole run
//                         (open in Perfetto / chrome://tracing)
//   --metrics-out=FILE    write the metrics registry as Prometheus text
//   --stats               print the per-rule / per-stratum evaluation table
//                         after each --eval / --query / recovery
//   --log-level=LEVEL     debug|info|warn|error|off (default warn)
//   --log-json            one-line-JSON structured logs on stderr
//
// Example:
//   dire_cli examples.dl --analyze buys --rewrite buys --eval --dump buys

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "base/failpoints.h"
#include "base/io.h"
#include "base/log.h"
#include "base/obs.h"
#include "base/signal.h"
#include "core/related_work.h"
#include "dire.h"
#include "eval/checkpoint.h"
#include "eval/explain.h"
#include "eval/magic.h"
#include "eval/maintain.h"
#include "eval/provenance.h"
#include "server/replication.h"
#include "server/server.h"
#include "storage/persist.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace {

// Observability flags, recognized anywhere on the command line (both the
// normal and the `recover` forms) and stripped before action parsing:
//   --trace-out=FILE    write a Chrome trace_event JSON of the run
//   --metrics-out=FILE  write the metrics registry as Prometheus text
//   --stats             print the per-rule / per-stratum table after each
//                       --eval / --query / recovery
//   --log-level=LEVEL   debug|info|warn|error|off (default warn)
//   --log-json          structured one-line-JSON logs instead of human text
struct ObsFlags {
  std::string trace_out;
  std::string metrics_out;
  bool stats = false;

  // Consumes recognized flags from argv; returns the remaining arguments
  // (argv[0] included). Returns false on a malformed value.
  bool Extract(int argc, char** argv, std::vector<char*>* rest) {
    for (int i = 0; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (arg.rfind("--trace-out=", 0) == 0) {
        trace_out = arg.substr(strlen("--trace-out="));
        if (trace_out.empty()) return false;
      } else if (arg.rfind("--metrics-out=", 0) == 0) {
        metrics_out = arg.substr(strlen("--metrics-out="));
        if (metrics_out.empty()) return false;
      } else if (arg == "--stats") {
        stats = true;
      } else if (arg.rfind("--log-level=", 0) == 0) {
        dire::Result<dire::log::Level> level =
            dire::log::ParseLevel(std::string(arg.substr(12)));
        if (!level.ok()) {
          std::fprintf(stderr, "error: %s\n",
                       level.status().ToString().c_str());
          return false;
        }
        dire::log::SetLevel(*level);
      } else if (arg == "--log-json") {
        dire::log::SetJsonOutput(true);
      } else {
        rest->push_back(argv[i]);
        continue;
      }
    }
    if (!trace_out.empty()) dire::obs::StartTracing();
    return true;
  }

  // Runs at every exit path of main: flushes the trace and metrics files
  // requested on the command line.
  ~ObsFlags() {
    if (!trace_out.empty()) {
      dire::obs::StopTracing();
      dire::Status written = dire::obs::WriteTraceFile(trace_out);
      if (written.ok()) {
        std::fprintf(stderr, "wrote trace: %s (%zu events)\n",
                     trace_out.c_str(), dire::obs::TraceEventCount());
      } else {
        std::fprintf(stderr, "error writing trace: %s\n",
                     written.ToString().c_str());
      }
    }
    if (!metrics_out.empty()) {
      dire::Status written = dire::obs::WriteMetricsFile(metrics_out);
      if (written.ok()) {
        std::fprintf(stderr, "wrote metrics: %s\n", metrics_out.c_str());
      } else {
        std::fprintf(stderr, "error writing metrics: %s\n",
                     written.ToString().c_str());
      }
    }
  }
};

int Fail(const dire::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: dire_cli PROGRAM.dl [--plan] [--analyze PRED] "
               "[--rewrite PRED] "
               "[--hoist PRED]\n"
               "       [--explain] [--eval] [--naive] [--query ATOM] "
               "[--why FACT] [--dump PRED] [--dot PRED FILE]\n"
               "       [--threads N] [--planner={greedy,cost}] "
               "[--replan-threshold X]\n"
               "       [--timeout-ms N] [--max-tuples N] "
               "[--max-memory-mb N] [--on-exhaustion={error,partial}]\n"
               "       [--data-dir DIR] [--checkpoint-every-rounds N] "
               "[--add FACT] [--retract FACT] [--maintain]\n"
               "       [--trace-out=FILE] [--metrics-out=FILE] [--stats] "
               "[--log-level=LEVEL] [--log-json]\n"
               "   or: dire_cli recover PROGRAM.dl --data-dir DIR "
               "[--checkpoint-every-rounds N] [--naive] [--threads N] "
               "[--dump PRED]\n"
               "   or: dire_cli serve PROGRAM.dl --data-dir DIR "
               "[--listen HOST:PORT] [--port-file FILE]\n"
               "       [--max-inflight N] [--max-queue N] "
               "[--retry-after-ms N] [--max-query-cost N]\n"
               "       [--request-timeout-ms N] [--request-max-tuples N] "
               "[--on-exhaustion={error,partial}]\n"
               "       [--checkpoint-every-writes N] [--no-maintain] "
               "[--threads N] [--crash-at SITE[:SKIP]]\n"
               "       [--idle-timeout-ms N] [--retry-jitter-seed N] "
               "[--replicate-from HOST:PORT]\n"
               "       [--replication-ack-timeout-ms N] "
               "[--replication-heartbeat-ms N]\n"
               "       [--http-port N] [--http-port-file FILE] "
               "[--access-log PATH] [--slow-query-ms N]\n"
               "   or: dire_cli promote HOST:PORT [--epoch N] "
               "[--fence-dir DIR]\n"
               "   or: dire_cli verify --data-dir DIR [--allow-torn-tail]\n");
  return 2;
}

// Parses a nonnegative integer flag value; returns -1 on garbage.
int64_t ParseCount(const char* text) {
  if (text == nullptr || *text == '\0') return -1;
  char* end = nullptr;
  long long v = std::strtoll(text, &end, 10);
  if (*end != '\0' || v < 0) return -1;
  return v;
}

// Parses a replan-threshold value; returns -1 on garbage (the evaluator
// additionally rejects anything <= 1).
double ParseThreshold(const char* text) {
  if (text == nullptr || *text == '\0') return -1;
  char* end = nullptr;
  double v = std::strtod(text, &end);
  if (*end != '\0') return -1;
  return v;
}

// Interactive read-eval-print loop over the loaded program.
int Repl(dire::ast::Program program) {
  std::printf("dire repl — `?- atom.` queries, `head :- body.` additions,\n"
              "            `.analyze PRED`, `.plan`, `.dump PRED`, "
              "`.why FACT.`, `.quit`\n");
  std::string line;
  while (true) {
    std::printf("dire> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = dire::StripWhitespace(line);
    if (trimmed.empty()) continue;
    if (trimmed == ".quit" || trimmed == ".exit") break;

    auto report = [](const dire::Status& status) {
      std::printf("error: %s\n", status.ToString().c_str());
    };

    if (trimmed[0] == '.') {
      std::vector<std::string> parts =
          dire::Split(std::string(trimmed), ' ');
      if (parts[0] == ".analyze" && parts.size() == 2) {
        dire::Result<dire::core::RecursionAnalysis> a =
            dire::core::AnalyzeRecursion(program, parts[1]);
        if (a.ok()) {
          std::printf("%s", a->Report().c_str());
        } else {
          report(a.status());
        }
      } else if (parts[0] == ".plan") {
        dire::Result<dire::core::ProgramPlan> plan =
            dire::core::OptimizeProgram(program);
        if (plan.ok()) {
          std::printf("%s", plan->Summary().c_str());
        } else {
          report(plan.status());
        }
      } else if (parts[0] == ".dump" && parts.size() == 2) {
        dire::storage::Database db;
        dire::eval::Evaluator ev(&db);
        dire::Result<dire::eval::EvalStats> stats = ev.Evaluate(program);
        if (!stats.ok()) {
          report(stats.status());
        } else {
          std::printf("%s", db.DumpRelation(parts[1]).c_str());
        }
      } else if (parts[0] == ".why" && parts.size() >= 2) {
        std::string text(trimmed.substr(5));
        if (!text.empty() && text.back() == '.') text.pop_back();
        dire::Result<dire::ast::Atom> fact = dire::parser::ParseAtom(text);
        if (!fact.ok()) {
          report(fact.status());
          continue;
        }
        dire::storage::Database db;
        dire::eval::ProvenanceTracker tracker;
        dire::eval::EvalOptions opts;
        opts.tracker = &tracker;
        dire::eval::Evaluator ev(&db, opts);
        dire::Result<dire::eval::EvalStats> stats = ev.Evaluate(program);
        if (!stats.ok()) {
          report(stats.status());
          continue;
        }
        dire::Result<dire::eval::Derivation> d =
            dire::eval::Explain(&db, program, tracker, *fact);
        if (d.ok()) {
          std::printf("%s", d->ToString().c_str());
        } else {
          report(d.status());
        }
      } else {
        std::printf("unknown command: %s\n", parts[0].c_str());
      }
      continue;
    }

    if (trimmed.substr(0, 2) == "?-") {
      std::string text(trimmed.substr(2));
      if (!text.empty() && text.back() == '.') text.pop_back();
      dire::Result<dire::ast::Atom> atom = dire::parser::ParseAtom(text);
      if (!atom.ok()) {
        report(atom.status());
        continue;
      }
      dire::storage::Database db;
      dire::Result<dire::eval::QueryAnswer> ans =
          dire::eval::AnswerQuery(&db, program, *atom);
      if (!ans.ok()) {
        report(ans.status());
        continue;
      }
      for (const dire::storage::Tuple& t : ans->tuples) {
        std::string row;
        for (size_t k = 0; k < t.size(); ++k) {
          if (k != 0) row += ", ";
          row += db.symbols().Name(t[k]);
        }
        std::printf("  (%s)\n", row.c_str());
      }
      std::printf("%zu answer(s)\n", ans->tuples.size());
      continue;
    }

    // Otherwise: a rule or fact to append.
    dire::Result<dire::ast::Rule> rule =
        dire::parser::ParseRule(std::string(trimmed));
    if (!rule.ok()) {
      report(rule.status());
      continue;
    }
    program.rules.push_back(std::move(rule).value());
    std::printf("added (%zu clauses)\n", program.rules.size());
  }
  return 0;
}

// `dire_cli recover PROGRAM.dl --data-dir DIR [...]`: replay the WAL over
// the last committed snapshot, resume evaluation from the checkpointed
// stratum, and finish the fixpoint.
int RunRecover(int argc, char** argv, bool want_stats) {
  if (argc < 3) return Usage();
  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[2]);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string program_text = buffer.str();

  dire::Result<dire::ast::Program> program =
      dire::parser::ParseProgram(program_text);
  if (!program.ok()) return Fail(program.status());

  std::string data_dir;
  dire::eval::EvalOptions options;
  std::vector<std::string> dumps;
  for (int i = 3; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--data-dir") {
      const char* dir = next();
      if (dir == nullptr) return Usage();
      data_dir = dir;
    } else if (flag == "--checkpoint-every-rounds") {
      int64_t v = ParseCount(next());
      if (v < 0) return Usage();
      options.checkpoint_every_rounds = static_cast<int>(v);
    } else if (flag == "--naive") {
      options.mode = dire::eval::EvalOptions::Mode::kNaive;
    } else if (flag == "--planner=greedy") {
      options.planner = dire::eval::PlannerMode::kGreedy;
    } else if (flag == "--planner=cost") {
      options.planner = dire::eval::PlannerMode::kCost;
    } else if (flag == "--threads") {
      int64_t v = ParseCount(next());
      if (v < 1) return Usage();
      options.num_threads = static_cast<int>(v);
    } else if (flag.rfind("--threads=", 0) == 0) {
      int64_t v = ParseCount(flag.c_str() + strlen("--threads="));
      if (v < 1) return Usage();
      options.num_threads = static_cast<int>(v);
    } else if (flag == "--dump") {
      const char* pred = next();
      if (pred == nullptr) return Usage();
      dumps.push_back(pred);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return Usage();
    }
  }
  if (data_dir.empty()) {
    std::fprintf(stderr, "error: recover requires --data-dir\n");
    return Usage();
  }

  dire::Result<dire::eval::RecoverResult> recovered =
      dire::eval::RecoverDatabase(data_dir, *program, program_text, options);
  if (!recovered.ok()) return Fail(recovered.status());
  std::printf("recovered: %d iteration(s), %zu tuple(s) derived after "
              "restart\n",
              recovered->stats.iterations, recovered->stats.tuples_derived);
  if (want_stats) {
    std::printf("%s", dire::eval::FormatEvalStats(recovered->stats).c_str());
  }
  for (const std::string& pred : dumps) {
    std::printf("%s", recovered->data_dir->db()->DumpRelation(pred).c_str());
  }
  return 0;
}

// `dire_cli serve PROGRAM.dl --data-dir DIR [...]`: recover the durable
// database, then serve the line-framed TCP protocol until SIGTERM/SIGINT.
int RunServe(int argc, char** argv) {
  if (argc < 3) return Usage();
  std::ifstream in(argv[2]);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[2]);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string program_text = buffer.str();
  dire::Result<dire::ast::Program> program =
      dire::parser::ParseProgram(program_text);
  if (!program.ok()) return Fail(program.status());

  dire::server::ServerConfig config;
  std::string port_file;
  std::string http_port_file;
  for (int i = 3; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--data-dir") {
      const char* dir = next();
      if (dir == nullptr) return Usage();
      config.data_dir = dir;
    } else if (flag == "--listen") {
      const char* addr = next();
      if (addr == nullptr) return Usage();
      std::string text = addr;
      size_t colon = text.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "error: --listen needs HOST:PORT\n");
        return Usage();
      }
      int64_t port = ParseCount(text.c_str() + colon + 1);
      if (port < 0 || port > 65535) return Usage();
      config.host = text.substr(0, colon);
      config.port = static_cast<int>(port);
    } else if (flag == "--port-file") {
      const char* path = next();
      if (path == nullptr) return Usage();
      port_file = path;
    } else if (flag == "--http-port") {
      int64_t v = ParseCount(next());
      if (v < 0 || v > 65535) return Usage();
      config.http_port = static_cast<int>(v);
    } else if (flag == "--http-port-file") {
      const char* path = next();
      if (path == nullptr) return Usage();
      http_port_file = path;
    } else if (flag == "--access-log") {
      const char* path = next();
      if (path == nullptr) return Usage();
      config.access_log = path;
    } else if (flag == "--slow-query-ms") {
      int64_t v = ParseCount(next());
      if (v < 0) return Usage();
      config.slow_query_ms = v;
    } else if (flag == "--max-inflight") {
      int64_t v = ParseCount(next());
      if (v < 1) return Usage();
      config.admission.max_inflight = static_cast<int>(v);
    } else if (flag == "--max-queue") {
      int64_t v = ParseCount(next());
      if (v < 0) return Usage();
      config.admission.max_queue = static_cast<int>(v);
    } else if (flag == "--retry-after-ms") {
      int64_t v = ParseCount(next());
      if (v < 0) return Usage();
      config.admission.retry_after_ms = static_cast<int>(v);
    } else if (flag == "--max-query-cost") {
      int64_t v = ParseCount(next());
      if (v < 0) return Usage();
      config.admission.max_query_cost = static_cast<double>(v);
    } else if (flag == "--request-timeout-ms") {
      int64_t v = ParseCount(next());
      if (v < 0) return Usage();
      config.request_timeout_ms = v;
    } else if (flag == "--request-max-tuples") {
      int64_t v = ParseCount(next());
      if (v < 0) return Usage();
      config.request_max_tuples = static_cast<uint64_t>(v);
    } else if (flag == "--on-exhaustion=error") {
      config.partial_on_exhaustion = false;
    } else if (flag == "--on-exhaustion=partial") {
      config.partial_on_exhaustion = true;
    } else if (flag == "--checkpoint-every-writes") {
      int64_t v = ParseCount(next());
      if (v < 0) return Usage();
      config.checkpoint_every_writes = static_cast<int>(v);
    } else if (flag == "--maintain") {
      config.maintain = true;
    } else if (flag == "--no-maintain") {
      config.maintain = false;
    } else if (flag == "--threads") {
      int64_t v = ParseCount(next());
      if (v < 1) return Usage();
      config.eval_threads = static_cast<int>(v);
    } else if (flag == "--idle-timeout-ms") {
      int64_t v = ParseCount(next());
      if (v < 0) return Usage();
      config.idle_timeout_ms = static_cast<int>(v);
    } else if (flag == "--retry-jitter-seed") {
      int64_t v = ParseCount(next());
      if (v < 0) return Usage();
      config.retry_jitter_seed = static_cast<uint64_t>(v);
    } else if (flag == "--replicate-from") {
      const char* target = next();
      if (target == nullptr) return Usage();
      if (std::strchr(target, ':') == nullptr) {
        std::fprintf(stderr, "error: --replicate-from needs HOST:PORT\n");
        return Usage();
      }
      config.replicate_from = target;
    } else if (flag == "--replication-ack-timeout-ms") {
      int64_t v = ParseCount(next());
      if (v < 0) return Usage();
      config.replication_ack_timeout_ms = static_cast<int>(v);
    } else if (flag == "--replication-heartbeat-ms") {
      int64_t v = ParseCount(next());
      if (v < 1) return Usage();
      config.replication_heartbeat_ms = static_cast<int>(v);
    } else if (flag == "--crash-at") {
      const char* site = next();
      if (site == nullptr) return Usage();
#ifdef DIRE_FAILPOINTS_ENABLED
      std::string text = site;
      dire::failpoints::Config fp;
      fp.crash = true;
      size_t colon = text.rfind(':');
      if (colon != std::string::npos) {
        int64_t skip = ParseCount(text.c_str() + colon + 1);
        if (skip < 0) return Usage();
        fp.skip = static_cast<int>(skip);
        text.resize(colon);
      }
      dire::failpoints::Enable(text, fp);
#else
      std::fprintf(stderr,
                   "error: --crash-at needs a -DDIRE_FAILPOINTS=ON build\n");
      return 1;
#endif
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return Usage();
    }
  }
  if (config.data_dir.empty()) {
    std::fprintf(stderr, "error: serve requires --data-dir\n");
    return Usage();
  }

  dire::signals::InstallShutdownHandlers();
  dire::Result<std::unique_ptr<dire::server::Server>> server =
      dire::server::Server::Create(std::move(config), std::move(*program),
                                   program_text);
  if (!server.ok()) return Fail(server.status());
  std::printf("dire serve: listening on port %d (pid %d)\n",
              (*server)->port(), static_cast<int>(::getpid()));
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", port_file.c_str());
      return 1;
    }
    out << (*server)->port() << "\n";
  }
  if (!http_port_file.empty()) {
    std::ofstream out(http_port_file);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   http_port_file.c_str());
      return 1;
    }
    out << (*server)->http_port() << "\n";
  }
  dire::Status run = (*server)->Run();
  if (!run.ok()) return Fail(run);
  return 0;
}

// `dire_cli verify --data-dir DIR [--allow-torn-tail]`: offline integrity
// scrub. Reads the files directly (no lock, no mutation) and verifies every
// checksum: the snapshot's section and commit CRCs, every WAL frame CRC plus
// the decodability and lsn ordering of each record payload, and the
// replstate file. Distinguishes a torn tail (crash damage reaching EOF —
// what a power loss legitimately leaves in the WAL, tolerated only under
// --allow-torn-tail) from mid-file damage (always fatal). Exit 0 only when
// everything verifies.
int RunVerify(int argc, char** argv) {
  std::string data_dir;
  bool allow_torn_tail = false;
  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--data-dir") {
      if (i + 1 >= argc) return Usage();
      data_dir = argv[++i];
    } else if (flag == "--allow-torn-tail") {
      allow_torn_tail = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return Usage();
    }
  }
  if (data_dir.empty()) {
    std::fprintf(stderr, "error: verify requires --data-dir\n");
    return Usage();
  }

  bool damaged = false;
  auto damage = [&](const char* file, const std::string& detail) {
    std::printf("%s: DAMAGED — %s\n", file, detail.c_str());
    damaged = true;
  };

  // Snapshot. Strict load first; on failure retry in recovery mode purely to
  // classify the damage. Our own writer replaces snapshots atomically, so
  // even a "torn tail" here is real damage — a crash can never leave one.
  const std::string snapshot_path = data_dir + "/snapshot.dire";
  if (::access(snapshot_path.c_str(), F_OK) != 0) {
    std::printf("snapshot.dire: absent (fresh directory)\n");
  } else {
    dire::storage::Database scratch;
    dire::Result<dire::storage::SnapshotLoadStats> strict =
        dire::storage::LoadSnapshotFile(&scratch, snapshot_path);
    if (strict.ok()) {
      std::printf("snapshot.dire: ok (v%d, %zu relation(s), %zu tuple(s))\n",
                  strict->version, strict->relations, strict->tuples);
    } else {
      dire::storage::Database lax_scratch;
      dire::storage::SnapshotLoadOptions lax;
      lax.recover_tail = true;
      bool truncated =
          dire::storage::LoadSnapshotFile(&lax_scratch, snapshot_path, lax)
              .ok();
      damage("snapshot.dire",
             std::string(truncated ? "EOF truncation (snapshots are written "
                                     "atomically; a crash cannot cause this)"
                                   : "mid-file damage") +
                 ": " + strict.status().ToString());
    }
  }

  // WAL. ReplayWal verifies every frame (length + CRC32C) and classifies
  // damage: torn tail → Ok with dropped_torn_tail, mid-file → kCorruption.
  // On top of that, every payload must decode as a WAL record and stamped
  // records must advance the lsn.
  const std::string wal_path = data_dir + "/wal.log";
  uint64_t last_lsn = 0;
  size_t bad_payloads = 0;
  std::string first_bad;
  auto check_payload = [&](std::string_view payload) -> dire::Status {
    dire::Result<dire::storage::WalRecord> rec =
        dire::storage::DecodeWalRecord(payload);
    if (!rec.ok()) {
      if (bad_payloads++ == 0) first_bad = rec.status().ToString();
      return dire::Status::Ok();  // keep scanning; later frames still verify
    }
    if (rec->stamped) {
      if (last_lsn != 0 && rec->lsn <= last_lsn && bad_payloads++ == 0) {
        first_bad = "stamped lsn " + std::to_string(rec->lsn) +
                    " does not advance past " + std::to_string(last_lsn);
      }
      last_lsn = rec->lsn;
    }
    return dire::Status::Ok();
  };
  dire::Result<dire::storage::WalReplayStats> replay =
      dire::storage::ReplayWal(wal_path, check_payload);
  if (!replay.ok()) {
    damage("wal.log", "mid-file damage: " + replay.status().ToString());
  } else if (bad_payloads > 0) {
    damage("wal.log", std::to_string(bad_payloads) +
                          " bad record payload(s); first: " + first_bad);
  } else if (replay->dropped_torn_tail) {
    if (allow_torn_tail) {
      std::printf(
          "wal.log: torn tail (%llu byte(s) after %zu good record(s)) — "
          "allowed by --allow-torn-tail\n",
          static_cast<unsigned long long>(replay->dropped_bytes),
          replay->records);
    } else {
      damage("wal.log",
             "torn tail: " +
                 std::to_string(replay->dropped_bytes) + " byte(s) after " +
                 std::to_string(replay->records) +
                 " good record(s) (run with --allow-torn-tail to accept "
                 "crash damage)");
    }
  } else {
    std::printf("wal.log: ok (%zu record(s), %llu byte(s))\n",
                replay->records,
                static_cast<unsigned long long>(replay->valid_bytes));
  }

  // Replication state.
  const std::string repl_path =
      data_dir + "/" + dire::storage::kReplStateFile;
  if (::access(repl_path.c_str(), F_OK) != 0) {
    std::printf("replstate: absent (pre-replication directory)\n");
  } else {
    dire::Result<std::string> body = dire::io::ReadFile(repl_path);
    if (!body.ok()) {
      damage("replstate", body.status().ToString());
    } else {
      dire::Result<dire::storage::ReplState> state =
          dire::storage::ParseReplState(*body);
      if (!state.ok()) {
        damage("replstate", state.status().ToString());
      } else {
        std::printf("replstate: ok (epoch %llu, lsn %llu, fenced %d)\n",
                    static_cast<unsigned long long>(state->epoch),
                    static_cast<unsigned long long>(state->lsn),
                    state->fenced ? 1 : 0);
      }
    }
  }

  if (damaged) {
    std::printf("verify: FAILED (%s)\n", data_dir.c_str());
    return 1;
  }
  std::printf("verify: clean (%s)\n", data_dir.c_str());
  return 0;
}

// `dire_cli promote HOST:PORT [--epoch N] [--fence-dir DIR]`: ask the
// follower at HOST:PORT to take over as primary, then (optionally) durably
// fence the deposed primary's data directory at the promoted epoch so a
// restart there fails closed. Fencing requires the old primary's process to
// be gone (its directory lock is broken only for a dead pid).
int RunPromote(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string target = argv[2];
  if (target.find(':') == std::string::npos) {
    std::fprintf(stderr, "error: promote needs HOST:PORT\n");
    return Usage();
  }
  uint64_t epoch = 0;
  std::string fence_dir;
  for (int i = 3; i < argc; ++i) {
    std::string flag = argv[i];
    if (flag == "--epoch") {
      if (i + 1 >= argc) return Usage();
      int64_t v = ParseCount(argv[++i]);
      if (v < 1) return Usage();
      epoch = static_cast<uint64_t>(v);
    } else if (flag == "--fence-dir") {
      if (i + 1 >= argc) return Usage();
      fence_dir = argv[++i];
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return Usage();
    }
  }

  dire::Result<int> fd = dire::server::DialTcp(target);
  if (!fd.ok()) return Fail(fd.status());
  std::string request =
      epoch == 0 ? std::string("PROMOTE\n")
                 : "PROMOTE epoch=" + std::to_string(epoch) + "\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::write(*fd, request.data() + sent, request.size() - sent);
    if (n <= 0) {
      ::close(*fd);
      std::fprintf(stderr, "error: cannot send PROMOTE to %s\n",
                   target.c_str());
      return 1;
    }
    sent += static_cast<size_t>(n);
  }
  // Promotion re-derives the whole fixpoint before answering; be patient.
  dire::server::LineReader reader(*fd);
  std::string line;
  dire::Result<bool> got = reader.ReadLine(/*timeout_ms=*/120000, &line);
  ::close(*fd);
  if (!got.ok()) return Fail(got.status());
  if (!*got) {
    std::fprintf(stderr, "error: promote timed out waiting for %s\n",
                 target.c_str());
    return 1;
  }
  std::printf("%s\n", line.c_str());
  const std::string prefix = "OK promoted epoch=";
  if (line.rfind(prefix, 0) != 0) {
    std::fprintf(stderr, "error: promote refused\n");
    return 1;
  }
  char* end = nullptr;
  uint64_t promoted_epoch =
      std::strtoull(line.c_str() + prefix.size(), &end, 10);
  if (promoted_epoch == 0) {
    std::fprintf(stderr, "error: malformed promote response\n");
    return 1;
  }

  if (!fence_dir.empty()) {
    dire::Result<std::unique_ptr<dire::storage::DataDir>> dir =
        dire::storage::DataDir::Open(fence_dir);
    if (!dir.ok()) return Fail(dir.status());
    dire::Status fenced = (*dir)->Fence(promoted_epoch);
    if (!fenced.ok()) return Fail(fenced);
    std::printf("fenced %s at epoch %llu\n", fence_dir.c_str(),
                static_cast<unsigned long long>(promoted_epoch));
  }
  return 0;
}

}  // namespace

int main(int raw_argc, char** raw_argv) {
  // Strip observability flags first: tracing must be live before the
  // program is even parsed, and the files flush on every exit path.
  ObsFlags obs_flags;
  std::vector<char*> args;
  if (!obs_flags.Extract(raw_argc, raw_argv, &args)) return Usage();
  const int argc = static_cast<int>(args.size());
  char** argv = args.data();
  if (argc < 2) return Usage();
  if (std::strcmp(argv[1], "recover") == 0) {
    return RunRecover(argc, argv, obs_flags.stats);
  }
  if (std::strcmp(argv[1], "serve") == 0) {
    return RunServe(argc, argv);
  }
  if (std::strcmp(argv[1], "verify") == 0) {
    return RunVerify(argc, argv);
  }
  if (std::strcmp(argv[1], "promote") == 0) {
    return RunPromote(argc, argv);
  }

  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string program_text = buffer.str();

  dire::Result<dire::ast::Program> program =
      dire::parser::ParseProgram(program_text);
  if (!program.ok()) return Fail(program.status());

  // With --data-dir, `db` points into the durable directory (snapshot + WAL
  // recovered on open); otherwise it is a plain in-memory database.
  dire::storage::Database local_db;
  dire::storage::Database* db = &local_db;
  std::unique_ptr<dire::storage::DataDir> data_dir;
  std::unique_ptr<dire::eval::DataDirCheckpointer> checkpointer;
  dire::eval::ProvenanceTracker tracker;
  dire::eval::EvalOptions eval_options;
  eval_options.tracker = &tracker;
  bool evaluated = false;

  // Resource-governance flags accumulate into `limits`; each --eval/--query
  // then runs under a fresh guard (the deadline clock starts at the action,
  // not at flag parsing).
  dire::GuardLimits limits;
  std::optional<dire::ExecutionGuard> guard;
  auto arm_guard = [&]() {
    if (limits.timeout_ms == 0 && limits.max_tuples == 0 &&
        limits.max_memory_bytes == 0) {
      return;
    }
    guard.emplace(limits);
    eval_options.guard = &*guard;
  };
  auto report_exhaustion = [](const dire::eval::EvalStats& stats) {
    if (stats.exhausted) {
      std::fprintf(stderr, "resource limit: %s — results are a sound "
                           "partial prefix\n",
                   stats.exhausted_reason.c_str());
    }
  };

  auto definition_of =
      [&](const std::string& pred)
      -> dire::Result<dire::ast::RecursiveDefinition> {
    return dire::ast::MakeDefinition(*program, pred);
  };

  // --maintain: later --add/--retract also bring the derived relations to
  // the new fixpoint incrementally (counting + DRed; see eval/maintain.h)
  // instead of leaving them stale until the next --eval. Requires the
  // derived state to already be at the program's fixpoint (a prior --eval
  // in this invocation, or a data dir whose last evaluation completed).
  bool maintain = false;
  std::unique_ptr<dire::eval::Maintainer> maintainer;
  auto row_present = [&](const std::string& pred,
                         const std::vector<std::string>& values) {
    const dire::storage::Relation* rel = db->Find(pred);
    if (rel == nullptr || rel->arity() != values.size()) return false;
    dire::storage::Tuple t;
    t.reserve(values.size());
    for (const std::string& v : values) {
      uint32_t id = db->symbols().Find(v);
      if (id == dire::storage::SymbolTable::kMissing) return false;
      t.push_back(id);
    }
    return rel->Contains(t);
  };
  auto maintain_delta = [&](const std::string& pred,
                            const std::vector<std::string>& values,
                            bool insert) -> dire::Status {
    if (maintainer == nullptr) {
      maintainer =
          std::make_unique<dire::eval::Maintainer>(db, *program);
    }
    if (!maintainer->init_status().ok()) return maintainer->init_status();
    if (!maintainer->usable()) {
      return dire::Status::InvalidArgument(
          "a previous maintenance failed; re-run --eval to rebuild the "
          "fixpoint");
    }
    std::vector<dire::eval::FactDelta> ins;
    std::vector<dire::eval::FactDelta> del;
    (insert ? ins : del).push_back(dire::eval::FactDelta{pred, values});
    dire::Result<dire::eval::MaintainStats> st =
        maintainer->ApplyDelta(ins, del);
    if (!st.ok()) return st.status();
    std::printf("maintained: +%zu -%zu derived tuple(s)\n",
                st->tuples_inserted, st->tuples_deleted);
    return dire::Status::Ok();
  };

  for (int i = 2; i < argc; ++i) {
    std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };

    if (flag == "--repl") {
      return Repl(*program);
    } else if (flag == "--plan") {
      dire::Result<dire::core::ProgramPlan> plan =
          dire::core::OptimizeProgram(*program);
      if (!plan.ok()) return Fail(plan.status());
      std::printf("%s", plan->Summary().c_str());
      std::printf("optimized program:\n%s",
                  plan->optimized.ToString().c_str());
      // Later --eval/--query run against the optimized program.
      *program = plan->optimized;
    } else if (flag == "--naive") {
      eval_options.mode = dire::eval::EvalOptions::Mode::kNaive;
    } else if (flag == "--data-dir") {
      const char* dir = next();
      if (dir == nullptr) return Usage();
      if (data_dir != nullptr) {
        std::fprintf(stderr, "error: --data-dir given twice\n");
        return Usage();
      }
      dire::Result<std::unique_ptr<dire::storage::DataDir>> opened =
          dire::storage::DataDir::Open(dir);
      if (!opened.ok()) return Fail(opened.status());
      data_dir = std::move(opened).value();
      db = data_dir->db();
      checkpointer = std::make_unique<dire::eval::DataDirCheckpointer>(
          data_dir.get(), dire::eval::ProgramCrc(program_text));
      eval_options.checkpointer = checkpointer.get();
    } else if (flag == "--checkpoint-every-rounds") {
      int64_t v = ParseCount(next());
      if (v < 0) return Usage();
      eval_options.checkpoint_every_rounds = static_cast<int>(v);
    } else if (flag == "--add") {
      const char* text = next();
      if (text == nullptr) return Usage();
      if (data_dir == nullptr) {
        std::fprintf(stderr, "error: --add requires --data-dir\n");
        return Usage();
      }
      dire::Result<dire::ast::Atom> atom = dire::parser::ParseAtom(text);
      if (!atom.ok()) return Fail(atom.status());
      std::vector<std::string> values;
      for (const dire::ast::Term& t : atom->args) {
        if (!t.IsConstant()) {
          return Fail(dire::Status::InvalidArgument(
              "--add needs a ground fact, got variable '" + t.text() +
              "' in " + atom->ToString()));
        }
        values.push_back(t.text());
      }
      const bool was_present = row_present(atom->predicate, values);
      dire::Status appended = data_dir->AppendFact(atom->predicate, values);
      if (!appended.ok()) return Fail(appended);
      std::printf("added %s (durable)\n", atom->ToString().c_str());
      if (maintain && !was_present) {
        dire::Status m = maintain_delta(atom->predicate, values, true);
        if (!m.ok()) return Fail(m);
      }
    } else if (flag == "--retract") {
      const char* text = next();
      if (text == nullptr) return Usage();
      if (data_dir == nullptr) {
        std::fprintf(stderr, "error: --retract requires --data-dir\n");
        return Usage();
      }
      dire::Result<dire::ast::Atom> atom = dire::parser::ParseAtom(text);
      if (!atom.ok()) return Fail(atom.status());
      std::vector<std::string> values;
      for (const dire::ast::Term& t : atom->args) {
        if (!t.IsConstant()) {
          return Fail(dire::Status::InvalidArgument(
              "--retract needs a ground fact, got variable '" + t.text() +
              "' in " + atom->ToString()));
        }
        values.push_back(t.text());
      }
      bool removed = false;
      dire::Status retracted =
          data_dir->RetractFact(atom->predicate, values, &removed);
      if (!retracted.ok()) return Fail(retracted);
      std::printf("retracted %s (%s)\n", atom->ToString().c_str(),
                  removed ? "durable" : "was absent");
      if (maintain && removed) {
        dire::Status m = maintain_delta(atom->predicate, values, false);
        if (!m.ok()) return Fail(m);
      }
    } else if (flag == "--maintain") {
      maintain = true;
    } else if (flag == "--threads") {
      int64_t v = ParseCount(next());
      if (v < 1) return Usage();
      eval_options.num_threads = static_cast<int>(v);
    } else if (flag.rfind("--threads=", 0) == 0) {
      int64_t v = ParseCount(flag.c_str() + strlen("--threads="));
      if (v < 1) return Usage();
      eval_options.num_threads = static_cast<int>(v);
    } else if (flag == "--planner=greedy") {
      eval_options.planner = dire::eval::PlannerMode::kGreedy;
    } else if (flag == "--planner=cost") {
      eval_options.planner = dire::eval::PlannerMode::kCost;
    } else if (flag == "--planner") {
      const char* mode = next();
      if (mode == nullptr) return Usage();
      if (std::strcmp(mode, "greedy") == 0) {
        eval_options.planner = dire::eval::PlannerMode::kGreedy;
      } else if (std::strcmp(mode, "cost") == 0) {
        eval_options.planner = dire::eval::PlannerMode::kCost;
      } else {
        std::fprintf(stderr, "error: --planner must be greedy or cost\n");
        return Usage();
      }
    } else if (flag == "--replan-threshold" ||
               flag.rfind("--replan-threshold=", 0) == 0) {
      const char* value = flag == "--replan-threshold"
                              ? next()
                              : flag.c_str() + strlen("--replan-threshold=");
      double v = ParseThreshold(value);
      if (!(v > 1.0)) {
        std::fprintf(stderr, "error: --replan-threshold must be > 1\n");
        return Usage();
      }
      eval_options.replan_threshold = v;
    } else if (flag == "--timeout-ms") {
      int64_t v = ParseCount(next());
      if (v < 0) return Usage();
      limits.timeout_ms = v;
    } else if (flag == "--max-tuples") {
      int64_t v = ParseCount(next());
      if (v < 0) return Usage();
      limits.max_tuples = static_cast<uint64_t>(v);
    } else if (flag == "--max-memory-mb") {
      int64_t v = ParseCount(next());
      if (v < 0) return Usage();
      limits.max_memory_bytes = static_cast<uint64_t>(v) * 1024 * 1024;
    } else if (flag == "--on-exhaustion=error") {
      eval_options.on_exhaustion =
          dire::eval::EvalOptions::OnExhaustion::kError;
    } else if (flag == "--on-exhaustion=partial") {
      eval_options.on_exhaustion =
          dire::eval::EvalOptions::OnExhaustion::kPartial;
    } else if (flag == "--analyze") {
      const char* pred = next();
      if (pred == nullptr) return Usage();
      dire::Result<dire::core::RecursionAnalysis> a =
          dire::core::AnalyzeRecursion(*program, pred);
      if (!a.ok()) return Fail(a.status());
      std::printf("%s", a->Report().c_str());
      // Related-work comparators, when applicable.
      dire::Result<dire::core::MinkerNicolasResult> mn =
          dire::core::TestMinkerNicolas(a->definition);
      if (mn.ok()) {
        std::printf("Minker-Nicolas class: %s (%s)\n",
                    mn->in_class ? "yes" : "no", mn->reason.c_str());
      }
      dire::Result<dire::core::IoannidisResult> io =
          dire::core::TestIoannidis(a->definition);
      if (io.ok()) {
        std::printf("Ioannidis class: %s, alpha-graph: %s\n",
                    io->in_class ? "yes" : "no",
                    io->alpha_graph_independent ? "independent"
                                                : "cycle found");
      }
    } else if (flag == "--rewrite") {
      const char* pred = next();
      if (pred == nullptr) return Usage();
      dire::Result<dire::ast::RecursiveDefinition> def = definition_of(pred);
      if (!def.ok()) return Fail(def.status());
      dire::Result<dire::core::RewriteResult> r =
          dire::core::BoundedRewrite(*def);
      if (!r.ok()) return Fail(r.status());
      if (r->outcome == dire::core::RewriteResult::Outcome::kBounded) {
        std::printf("bounded at depth %d:\n%s", r->bound,
                    r->rewritten.ToString().c_str());
      } else {
        std::printf("not shown bounded: %s\n", r->note.c_str());
      }
    } else if (flag == "--hoist") {
      const char* pred = next();
      if (pred == nullptr) return Usage();
      dire::Result<dire::ast::RecursiveDefinition> def = definition_of(pred);
      if (!def.ok()) return Fail(def.status());
      dire::Result<dire::core::HoistResult> h =
          dire::core::HoistUnconnectedPredicates(*def);
      if (!h.ok()) return Fail(h.status());
      if (h->changed) {
        std::printf("hoisted (%s):\n%s", h->note.c_str(),
                    h->program.ToString().c_str());
      } else {
        std::printf("nothing hoisted: %s\n", h->note.c_str());
      }
    } else if (flag == "--explain") {
      // After an evaluation the database carries real statistics: compile
      // under the active planner and annotate with observed cardinalities.
      // Beforehand, print the statistics-free plans.
      dire::Result<std::string> text =
          evaluated ? dire::eval::ExplainProgram(*program, db,
                                                 eval_options.planner,
                                                 /*with_actuals=*/true)
                    : dire::eval::ExplainProgram(*program);
      if (!text.ok()) return Fail(text.status());
      std::printf("%s", text->c_str());
    } else if (flag == "--eval") {
      arm_guard();
      dire::eval::Evaluator evaluator(db, eval_options);
      dire::Result<dire::eval::EvalStats> stats =
          evaluator.Evaluate(*program);
      if (!stats.ok()) return Fail(stats.status());
      std::printf("evaluated: %d iteration(s), %zu tuple(s) derived\n",
                  stats->iterations, stats->tuples_derived);
      if (obs_flags.stats) {
        std::printf("%s", dire::eval::FormatEvalStats(*stats).c_str());
      }
      report_exhaustion(*stats);
      evaluated = true;
      // A full evaluation re-established the fixpoint; any maintenance
      // state (dirty flag, derivation counts keyed to dropped rows) is
      // stale and re-primes lazily on the next maintained write.
      if (maintainer != nullptr) maintainer->Reset();
    } else if (flag == "--query") {
      const char* text = next();
      if (text == nullptr) return Usage();
      dire::Result<dire::ast::Atom> atom = dire::parser::ParseAtom(text);
      if (!atom.ok()) return Fail(atom.status());
      arm_guard();
      dire::Result<dire::eval::QueryAnswer> ans =
          dire::eval::AnswerQuery(db, *program, *atom, eval_options);
      if (!ans.ok()) return Fail(ans.status());
      if (obs_flags.stats) {
        std::printf("%s", dire::eval::FormatEvalStats(ans->stats).c_str());
      }
      report_exhaustion(ans->stats);
      std::printf("%zu answer(s) for %s:\n", ans->tuples.size(),
                  atom->ToString().c_str());
      for (const dire::storage::Tuple& t : ans->tuples) {
        std::string row;
        for (size_t k = 0; k < t.size(); ++k) {
          if (k != 0) row += ", ";
          row += db->symbols().Name(t[k]);
        }
        std::printf("  (%s)\n", row.c_str());
      }
      evaluated = true;
    } else if (flag == "--why") {
      const char* text = next();
      if (text == nullptr) return Usage();
      dire::Result<dire::ast::Atom> atom = dire::parser::ParseAtom(text);
      if (!atom.ok()) return Fail(atom.status());
      if (!evaluated) {
        std::fprintf(stderr, "note: --why before --eval; evaluating now\n");
        arm_guard();  // Fresh deadline for the implicit evaluation.
        dire::eval::Evaluator evaluator(db, eval_options);
        dire::Result<dire::eval::EvalStats> stats =
            evaluator.Evaluate(*program);
        if (!stats.ok()) return Fail(stats.status());
        evaluated = true;
      }
      dire::Result<dire::eval::Derivation> d =
          dire::eval::Explain(db, *program, tracker, *atom);
      if (!d.ok()) return Fail(d.status());
      std::printf("%s", d->ToString().c_str());
    } else if (flag == "--dump") {
      const char* pred = next();
      if (pred == nullptr) return Usage();
      if (!evaluated) {
        std::fprintf(stderr, "note: --dump before --eval/--query; relation "
                             "may be empty\n");
      }
      std::printf("%s", db->DumpRelation(pred).c_str());
    } else if (flag == "--dot") {
      const char* pred = next();
      const char* path = next();
      if (pred == nullptr || path == nullptr) return Usage();
      dire::Result<dire::ast::RecursiveDefinition> def = definition_of(pred);
      if (!def.ok()) return Fail(def.status());
      dire::Result<dire::core::AvGraph> graph =
          dire::core::AvGraph::Build(*def);
      if (!graph.ok()) return Fail(graph.status());
      std::ofstream out(path);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", path);
        return 1;
      }
      out << graph->ToDot();
      std::printf("wrote %s\n", path);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return Usage();
    }
  }
  return 0;
}
